#include "opt/pass.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/eval.h"
#include "support/rng.h"

namespace disc {
namespace {

int64_t CountOps(const Graph& g, OpKind kind) {
  int64_t n = 0;
  for (Node* node : g.nodes()) {
    if (node->kind() == kind) ++n;
  }
  return n;
}

Result<bool> RunPass(std::unique_ptr<Pass> pass, Graph* g,
                     PassContext ctx = {}) {
  return pass->Run(g, ctx);
}

TEST(CanonicalizeTest, AddZeroRemoved) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 4});
  b.Output({b.Add(x, b.ScalarF32(0.0f))});
  // x + scalar 0 broadcasts: output type equals x's type, so it folds.
  auto r = RunPass(CreateCanonicalizePass(), &g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_EQ(g.outputs()[0], x);
}

TEST(CanonicalizeTest, MulOneEitherSide) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* a = b.Mul(x, b.ScalarF32(1.0f));
  Value* c = b.Mul(b.ScalarF32(1.0f), a);
  b.Output({c});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  EXPECT_EQ(g.outputs()[0], x);
  EXPECT_EQ(CountOps(g, OpKind::kMul), 0);
}

TEST(CanonicalizeTest, DivByOneAndPowOne) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  b.Output({b.Div(x, b.ScalarF32(1.0f)), b.Pow(x, b.ScalarF32(1.0f))});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  EXPECT_EQ(g.outputs()[0], x);
  EXPECT_EQ(g.outputs()[1], x);
}

TEST(CanonicalizeTest, DoubleNeg) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  b.Output({b.Neg(b.Neg(x))});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  EXPECT_EQ(g.outputs()[0], x);
}

TEST(CanonicalizeTest, IdentityTransposeAndComposition) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3, 4});
  Value* t1 = b.Transpose(x, {0, 1, 2});  // identity
  Value* t2 = b.Transpose(b.Transpose(x, {1, 0, 2}), {1, 0, 2});  // identity pair
  b.Output({t1, t2});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  // Composed transpose becomes identity in a second sweep.
  ASSERT_TRUE(RunPass(CreateCanonicalizePass(), &g).ok());
  RunPass(CreateCanonicalizePass(), &g).ok();
  EXPECT_EQ(g.outputs()[0], x);
  EXPECT_EQ(g.outputs()[1], x);
}

TEST(CanonicalizeTest, CastSameDTypeAndTrivialSlicePad) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4, 4});
  Value* c = b.Cast(x, DType::kF32);
  Value* s = b.Slice(c, {0, 0}, {-1, -1}, {1, 1});
  Value* p = b.Pad(s, {0, 0}, {0, 0});
  b.Output({p});
  for (int i = 0; i < 3; ++i) RunPass(CreateCanonicalizePass(), &g).ok();
  EXPECT_EQ(g.outputs()[0], x);
}

TEST(CanonicalizeTest, SelectWithConstantPredicate) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Input("y", DType::kF32, {4});
  Value* pred = b.Constant(Tensor::I1({}, {1}));
  b.Output({b.Select(pred, x, y)});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  EXPECT_EQ(g.outputs()[0], x);
}

TEST(CanonicalizeTest, ScalarMulChainCollapses) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  Value* y = b.Mul(b.Mul(x, b.ScalarF32(2.0f)), b.ScalarF32(3.0f));
  b.Output({y});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  g.RemoveDeadNodes();
  EXPECT_EQ(CountOps(g, OpKind::kMul), 1);
  auto out = EvaluateGraph(g, {Tensor::F32({2}, {1, 2})});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Tensor::AllClose((*out)[0], Tensor::F32({2}, {6, 12})));
}

TEST(CanonicalizeTest, ScalarAddChainCollapses) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  Value* y = b.Add(b.ScalarF32(1.5f), b.Add(x, b.ScalarF32(2.5f)));
  b.Output({y});
  ASSERT_TRUE(*RunPass(CreateCanonicalizePass(), &g));
  g.RemoveDeadNodes();
  EXPECT_EQ(CountOps(g, OpKind::kAdd), 1);
  auto out = EvaluateGraph(g, {Tensor::F32({1}, {10})});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ((*out)[0].f32_data()[0], 14.0f);
}

TEST(CanonicalizeTest, ChainNotFoldedWhenInnerValueShared) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* inner = b.Mul(x, b.ScalarF32(2.0f));
  Value* outer = b.Mul(inner, b.ScalarF32(3.0f));
  b.Output({outer, inner});  // inner escapes -> folding would duplicate it
  auto r = RunPass(CreateCanonicalizePass(), &g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CountOps(g, OpKind::kMul), 2);
}

TEST(CanonicalizeTest, PreservesSemantics) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {3, 4});
  Value* y = b.Add(b.Mul(x, b.ScalarF32(1.0f)), b.ScalarF32(0.0f));
  Value* z = b.Neg(b.Neg(b.Exp(y)));
  b.Output({z});

  Rng rng(9);
  Tensor in(DType::kF32, {3, 4});
  for (int i = 0; i < 12; ++i) in.f32_data()[i] = rng.Normal();
  auto before = EvaluateGraph(g, {in});
  for (int i = 0; i < 3; ++i) RunPass(CreateCanonicalizePass(), &g).ok();
  auto after = EvaluateGraph(g, {in});
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(Tensor::AllClose((*before)[0], (*after)[0]));
}

TEST(ConstantFoldTest, FoldsConstantSubtree) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2});
  Value* c = b.Add(b.ScalarF32(2.0f), b.ScalarF32(3.0f));
  b.Output({b.Mul(x, c)});
  ASSERT_TRUE(*RunPass(CreateConstantFoldPass(), &g));
  // The add is folded into one constant.
  EXPECT_EQ(CountOps(g, OpKind::kAdd), 0);
  auto out = EvaluateGraph(g, {Tensor::F32({2}, {1, 2})});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Tensor::AllClose((*out)[0], Tensor::F32({2}, {5, 10})));
}

TEST(ConstantFoldTest, RespectsSizeLimit) {
  Graph g;
  GraphBuilder b(&g);
  Value* c = b.Constant(Tensor::F32({1}, {1.0f}));
  Value* big = b.BroadcastTo(c, {1 << 20});
  b.Output({big});
  PassContext ctx;
  ctx.max_fold_elements = 1024;
  auto r = RunPass(CreateConstantFoldPass(), &g, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // too big to materialize
  EXPECT_EQ(CountOps(g, OpKind::kBroadcastTo), 1);
}

TEST(ConstantFoldTest, FoldsShapeOfStaticInput) {
  Graph g;
  GraphBuilder b(&g);
  Value* c = b.Constant(Tensor(DType::kF32, {3, 4}));
  b.Output({b.ShapeOf(c)});
  ASSERT_TRUE(*RunPass(CreateConstantFoldPass(), &g));
  Node* out_node = g.outputs()[0]->producer();
  ASSERT_EQ(out_node->kind(), OpKind::kConstant);
  const Tensor& t = out_node->GetTensorAttr("value");
  EXPECT_EQ(t.i64_data()[0], 3);
  EXPECT_EQ(t.i64_data()[1], 4);
}

TEST(CseTest, MergesIdenticalNodes) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* e1 = b.Exp(x);
  Value* e2 = b.Exp(x);
  b.Output({b.Add(e1, e2)});
  EXPECT_EQ(CountOps(g, OpKind::kExp), 2);
  ASSERT_TRUE(*RunPass(CreateCsePass(), &g));
  EXPECT_EQ(CountOps(g, OpKind::kExp), 1);
}

TEST(CseTest, DistinguishesAttrs) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3});
  Value* r1 = b.ReduceSum(x, {0});
  Value* r2 = b.ReduceSum(x, {1});
  b.Output({r1, r2});
  auto r = RunPass(CreateCsePass(), &g);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(CountOps(g, OpKind::kReduceSum), 2);
}

TEST(CseTest, MergesEqualConstants) {
  Graph g;
  GraphBuilder b(&g);
  Value* c1 = b.ScalarF32(2.0f);
  Value* c2 = b.ScalarF32(2.0f);
  Value* x = b.Input("x", DType::kF32, {2});
  b.Output({b.Mul(b.Mul(x, c1), c2)});
  ASSERT_TRUE(*RunPass(CreateCsePass(), &g));
  EXPECT_EQ(CountOps(g, OpKind::kConstant), 1);
}

TEST(DceTest, RemovesUnreachable) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* live = b.Relu(x);
  b.Exp(b.Abs(x));  // dead
  b.Output({live});
  ASSERT_TRUE(*RunPass(CreateDcePass(), &g));
  EXPECT_EQ(g.num_nodes(), 1);
}

TEST(ShapeSimplifyTest, RemovesProvablyRedundantBroadcast) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  // Broadcast x to its own (dynamically computed) shape — a no-op that
  // static analysis cannot remove but the symbolic layer can.
  Value* bc = b.BroadcastToDynamic(x, b.ShapeOf(x));
  b.Output({b.Relu(bc)});
  EXPECT_EQ(CountOps(g, OpKind::kBroadcastTo), 1);
  ASSERT_TRUE(*RunPass(CreateShapeSimplifyPass(), &g));
  EXPECT_EQ(CountOps(g, OpKind::kBroadcastTo), 0);
}

TEST(ShapeSimplifyTest, RemovesReshapeToSameDynamicShape) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* rs = b.ReshapeDynamic(x, b.ShapeOf(x));
  b.Output({rs});
  ASSERT_TRUE(*RunPass(CreateShapeSimplifyPass(), &g));
  EXPECT_EQ(CountOps(g, OpKind::kReshape), 0);
  EXPECT_EQ(g.outputs()[0], x);
}

TEST(ShapeSimplifyTest, KeepsRealBroadcast) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 8});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 8});
  Value* bc = b.BroadcastToDynamic(x, b.ShapeOf(y));
  b.Output({bc});
  auto r = RunPass(CreateShapeSimplifyPass(), &g);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(CountOps(g, OpKind::kBroadcastTo), 1);
}

TEST(LayoutSimplifyTest, FoldsTransposeIntoMatMulFlag) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* w = b.Input("w", DType::kF32, {6, 8});
  Value* wt = b.Transpose(w, {1, 0});
  Value* y = b.MatMul(x, wt);
  b.Output({y});
  ASSERT_TRUE(*RunPass(CreateLayoutSimplifyPass(), &g));
  Node* mm = g.outputs()[0]->producer();
  EXPECT_EQ(mm->kind(), OpKind::kMatMul);
  EXPECT_EQ(mm->GetIntAttr("transpose_b", 0), 1);
  EXPECT_EQ(mm->operand(1), w);
  EXPECT_EQ(CountOps(g, OpKind::kTranspose), 0);
}

TEST(LayoutSimplifyTest, DoubleFoldCancelsFlag) {
  // matmul(x, transpose(w)) with transpose_b already 1 -> flag back to 0.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4, 8});
  Value* w = b.Input("w", DType::kF32, {8, 6});
  Value* wt = b.Transpose(w, {1, 0});
  Value* y = b.MatMul(x, wt, false, /*transpose_b=*/true);
  b.Output({y});
  ASSERT_TRUE(*RunPass(CreateLayoutSimplifyPass(), &g));
  EXPECT_EQ(g.outputs()[0]->producer()->GetIntAttr("transpose_b", 0), 0);
}

TEST(LayoutSimplifyTest, BatchDimTransposeNotFolded) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 4, 8});
  Value* w = b.Input("w", DType::kF32, {4, 2, 8});
  // Swaps batch dims, not the matrix dims: must not fold.
  Value* wt = b.Transpose(w, {1, 0, 2});
  Value* y = b.MatMul(x, wt, false, true);
  b.Output({y});
  auto r = RunPass(CreateLayoutSimplifyPass(), &g);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(CountOps(g, OpKind::kTranspose), 1);
}

TEST(LayoutSimplifyTest, PreservesSemantics) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {3, 8});
  Value* w = b.Input("w", DType::kF32, {5, 8});
  b.Output({b.MatMul(x, b.Transpose(w, {1, 0}))});
  Rng rng(21);
  Tensor xt(DType::kF32, {3, 8});
  Tensor wt(DType::kF32, {5, 8});
  for (int i = 0; i < 24; ++i) xt.f32_data()[i] = rng.Normal();
  for (int i = 0; i < 40; ++i) wt.f32_data()[i] = rng.Normal();
  auto before = EvaluateGraph(g, {xt, wt});
  ASSERT_TRUE(*RunPass(CreateLayoutSimplifyPass(), &g));
  auto after = EvaluateGraph(g, {xt, wt});
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(Tensor::AllClose((*before)[0], (*after)[0]));
}

TEST(PassManagerTest, PipelineReachesFixpointAndPreservesSemantics) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* noisy = b.Mul(b.Add(x, b.ScalarF32(0.0f)), b.ScalarF32(1.0f));
  Value* bc = b.BroadcastToDynamic(noisy, b.ShapeOf(x));
  Value* e1 = b.Exp(bc);
  Value* e2 = b.Exp(bc);
  b.Output({b.Add(e1, e2)});

  Rng rng(11);
  Tensor in(DType::kF32, {3, 8});
  for (int i = 0; i < 24; ++i) in.f32_data()[i] = rng.Normal();
  auto before = EvaluateGraph(g, {in});

  PassManager pm;
  AddStandardPasses(&pm);
  PassContext ctx;
  ASSERT_TRUE(pm.RunToFixpoint(&g, ctx).ok());

  auto after = EvaluateGraph(g, {in});
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(Tensor::AllClose((*before)[0], (*after)[0]));
  // exp deduped, broadcast and identities gone: exp + add remain.
  EXPECT_EQ(CountOps(g, OpKind::kExp), 1);
  EXPECT_EQ(CountOps(g, OpKind::kBroadcastTo), 0);
  EXPECT_EQ(CountOps(g, OpKind::kMul), 0);
  EXPECT_TRUE(g.Verify().ok());
}

TEST(PassManagerTest, ChangeLogMergesRepeatedPassEntries) {
  // A graph that needs multiple fixpoint sweeps: canonicalize folds the
  // plain identities in sweep 1, constant folding then collapses
  // Add(0.5, 0.5) into the scalar 1.0, and only in sweep 2 can
  // canonicalize fold the exposed Mul(y, 1.0) identity. The change log
  // must still carry ONE row per pass name with accumulated counts, not
  // one row per sweep.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Mul(b.Add(x, b.ScalarF32(0.0f)), b.ScalarF32(1.0f));
  Value* one = b.Add(b.ScalarF32(0.5f), b.ScalarF32(0.5f));
  b.Output({b.Tanh(b.Mul(y, one))});

  PassManager pm;
  AddStandardPasses(&pm);
  PassContext ctx;
  ASSERT_TRUE(pm.RunToFixpoint(&g, ctx).ok());

  const auto& log = pm.change_log();
  ASSERT_FALSE(log.empty());
  std::vector<std::string> names;
  int64_t total_changes = 0;
  for (const auto& [name, count] : log) {
    names.push_back(name);
    EXPECT_GE(count, 1) << name;
    total_changes += count;
  }
  std::vector<std::string> unique = names;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(names.size(), unique.size()) << "duplicate change_log rows";

  // canonicalize changed in two different sweeps, so its single merged row
  // accumulated both.
  auto canon = std::find_if(log.begin(), log.end(), [](const auto& entry) {
    return entry.first == std::string("canonicalize");
  });
  ASSERT_NE(canon, log.end());
  EXPECT_GE(canon->second, 2);

  // pass_stats agrees with the merged log.
  for (const auto& stat : pm.pass_stats()) {
    auto it = std::find_if(log.begin(), log.end(), [&](const auto& entry) {
      return entry.first == stat.name;
    });
    int64_t logged = it != log.end() ? it->second : 0;
    EXPECT_EQ(stat.changes, logged) << stat.name;
  }
  EXPECT_GE(total_changes, 2);
}

}  // namespace
}  // namespace disc
