// Executable/runtime behaviour: mode consistency, host placement of shape
// computation, liveness-driven memory accounting, fused edge-case ops.
#include <gtest/gtest.h>

#include <cstring>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "support/rng.h"

namespace disc {
namespace {

Tensor RandomF32(Rng* rng, std::vector<int64_t> dims) {
  Tensor t(DType::kF32, std::move(dims));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.f32_data()[i] = rng->Normal();
  }
  return t;
}

TEST(RuntimeTest, TimingOnlyAndDataModeAgreeOnProfile) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 32});
  b.Output({b.Softmax(b.Relu(x))});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());

  Rng rng(1);
  Tensor in = RandomF32(&rng, {8, 32});
  auto data = (*exe)->Run({in});
  auto timing = (*exe)->RunWithShapes({{8, 32}});
  ASSERT_TRUE(data.ok() && timing.ok());
  EXPECT_EQ(data->profile.kernel_launches, timing->profile.kernel_launches);
  EXPECT_EQ(data->profile.bytes_read, timing->profile.bytes_read);
  EXPECT_DOUBLE_EQ(data->profile.device_time_us,
                   timing->profile.device_time_us);
  EXPECT_TRUE(timing->outputs.empty());
  EXPECT_FALSE(data->outputs.empty());
}

TEST(RuntimeTest, HostStepsContributeNoDeviceTime) {
  // A graph that is ONLY shape computation: no kernels at all.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* shape = b.ShapeOf(x);
  Value* numel = b.Mul(b.Dim(x, 0), b.Dim(x, 1));
  b.Output({shape, numel});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor(DType::kF32, {3, 4})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.kernel_launches, 0);
  EXPECT_DOUBLE_EQ(r->profile.device_time_us, 0.0);
  EXPECT_EQ(r->outputs[0].i64_data()[0], 3);
  EXPECT_EQ(r->outputs[1].i64_data()[0], 12);
}

TEST(RuntimeTest, PeakMemoryBelowSumOfAllIntermediates) {
  // A long chain: liveness should reuse buffers, keeping the peak near two
  // live tensors, far below the 12-tensor total.
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim, 1024});
  CompileOptions options = CompileOptions::NoFusion();
  for (int i = 0; i < 12; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, options);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->RunWithShapes({{64, 1024}});
  ASSERT_TRUE(r.ok());
  int64_t one_tensor = 64 * 1024 * 4;
  EXPECT_LE(r->profile.peak_memory_bytes, 3 * one_tensor);
  EXPECT_GE(r->profile.peak_memory_bytes, one_tensor);
}

TEST(RuntimeTest, ConstantsAreResidentAcrossTheRun) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Tensor w(DType::kF32, {16, 16});
  Value* y = b.MatMul(x, b.Constant(w));
  b.Output({b.Relu(y)});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->RunWithShapes({{4, 16}});
  ASSERT_TRUE(r.ok());
  // Peak includes the weight (1KB) + activations.
  EXPECT_GE(r->profile.peak_memory_bytes, 16 * 16 * 4);
}

TEST(RuntimeTest, FusedSelectAndIotaExecuteCorrectly) {
  // select/iota inside a fused loop kernel (edge ops of the executor).
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  Value* pred = b.Greater(x, b.ScalarF32(0.0f));
  Value* y = b.Select(pred, x, b.Neg(x));  // |x|
  b.Output({y});
  auto exe = DiscCompiler::Compile(g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  Tensor in = Tensor::F32({5}, {-2, -1, 0, 1, 2});
  auto r = (*exe)->Run({in});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Tensor::AllClose(r->outputs[0],
                               Tensor::F32({5}, {2, 1, 0, 1, 2})));
}

TEST(RuntimeTest, FusedGatherThroughPadMatchesReference) {
  Graph g;
  GraphBuilder b(&g);
  Value* data = b.Input("data", DType::kF32, {6, 4});
  Value* ids = b.Input("ids", DType::kI64, {kDynamicDim});
  Value* gathered = b.Gather(data, ids, 0);
  Value* padded = b.Pad(gathered, {1, 0}, {0, 1}, -5.0);
  b.Output({b.Relu(padded)});
  auto exe = DiscCompiler::Compile(g, {{}, {"N"}});
  ASSERT_TRUE(exe.ok());
  Rng rng(2);
  std::vector<Tensor> inputs = {RandomF32(&rng, {6, 4}),
                                Tensor::I64({3}, {5, 0, 3})};
  auto got = (*exe)->Run(inputs);
  auto want = EvaluateGraph(g, inputs);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_TRUE(Tensor::AllClose(got->outputs[0], (*want)[0]));
}

TEST(RuntimeTest, ShapeValueConsumedAsData) {
  // Mean over a dynamic axis computed as sum / cast(dim): the dim value is
  // produced by the host shape program, cast to f32, and consumed inside a
  // fused device kernel — the host/device boundary the paper's runtime
  // manages.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* total = b.ReduceSum(x, {1});  // [B]
  Value* len = b.Cast(b.Dim(x, 1), DType::kF32);  // f32 scalar
  b.Output({b.Div(total, len)});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  auto r = (*exe)->Run({Tensor::F32({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Tensor::AllClose(r->outputs[0], Tensor::F32({2}, {2.5, 25})));
}

TEST(RuntimeTest, ProfileToStringMentionsKeyCounters) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  b.Output({b.Relu(x)});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->RunWithShapes({{4}});
  ASSERT_TRUE(r.ok());
  std::string s = r->profile.ToString();
  EXPECT_NE(s.find("launches="), std::string::npos);
  EXPECT_NE(s.find("variants{"), std::string::npos);
}

TEST(RuntimeTest, SameExecutableIsReentrant) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({b.Exp(x)});
  auto exe = DiscCompiler::Compile(g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  Rng rng(3);
  Tensor a = RandomF32(&rng, {4});
  Tensor c = RandomF32(&rng, {9});
  auto r1 = (*exe)->Run({a});
  auto r2 = (*exe)->Run({c});
  auto r3 = (*exe)->Run({a});
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_TRUE(Tensor::AllClose(r1->outputs[0], r3->outputs[0]));
  EXPECT_EQ(r2->outputs[0].dims(), (std::vector<int64_t>{9}));
}

TEST(RuntimeTest, PlanCacheHitsCutHostOverhead) {
  // Repeat-heavy trace: plan hits must skip the symbolic phase. Compare
  // mean measured host planning time on hits vs misses — the ISSUE target
  // is >=2x; real ratios are >10x, so 2x keeps CI noise-proof.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Tensor w(DType::kF32, {64, 64});
  Value* y = b.MatMul(x, b.Constant(w));
  b.Output({b.Softmax(b.Relu(y))});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());

  double miss_us = 0.0, hit_us = 0.0;
  int64_t misses = 0, hits = 0;
  for (int round = 0; round < 200; ++round) {
    int64_t batch = 1 + round % 4;  // 4 signatures, 50 repeats each
    auto r = (*exe)->RunWithShapes({{batch, 64}});
    ASSERT_TRUE(r.ok());
    if (r->profile.launch_plan_hit) {
      hit_us += r->profile.host_plan_us;
      ++hits;
    } else {
      miss_us += r->profile.host_plan_us;
      ++misses;
    }
  }
  ASSERT_EQ(misses, 4);
  ASSERT_EQ(hits, 196);
  EXPECT_GE(static_cast<double>(hits) / 200.0, 0.8);  // repeat-heavy trace
  double mean_miss = miss_us / static_cast<double>(misses);
  double mean_hit = hit_us / static_cast<double>(hits);
  EXPECT_GE(mean_miss, 2.0 * mean_hit)
      << "mean miss " << mean_miss << "us vs mean hit " << mean_hit << "us";
}

TEST(RuntimeTest, FullyDynamicTraceDegradesGracefully) {
  // Every query a fresh signature: the cache never hits and every plan is
  // built from scratch. The only extra work vs the uncached path is one
  // hash lookup + one LRU insert, so per-query planning time must stay
  // within a small factor of the cache-off baseline.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  b.Output({b.Softmax(b.Relu(x))});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());
  (*exe)->set_plan_cache_capacity(32);  // forces eviction churn too

  RunOptions off;
  off.use_launch_plan_cache = false;
  auto timed = [&](const RunOptions& options) {
    // Warm-up pass so allocator/lazy state doesn't skew either arm.
    for (int64_t batch = 1; batch <= 50; ++batch) {
      EXPECT_TRUE((*exe)->RunWithShapes({{batch, 64}}, options).ok());
    }
    double total = 0.0;
    for (int64_t batch = 51; batch <= 450; ++batch) {
      auto r = (*exe)->RunWithShapes({{batch, 64}}, options);
      EXPECT_TRUE(r.ok());
      EXPECT_FALSE(r->profile.launch_plan_hit);
      total += r->profile.host_plan_us;
    }
    return total / 400.0;
  };
  double uncached_us = timed(off);
  double all_miss_us = timed(RunOptions{});
  // Generous bound: wall-clock micro-timings jitter under CI load, and the
  // point is only that misses are not pathologically slower.
  EXPECT_LE(all_miss_us, 3.0 * uncached_us + 20.0)
      << "all-miss " << all_miss_us << "us vs uncached " << uncached_us
      << "us";
}

TEST(RuntimeTest, LibraryEfficiencyOptionChangesGemmTime) {
  Graph g;
  GraphBuilder b(&g);
  // Large enough to be compute-bound so library efficiency matters.
  Value* x = b.Input("x", DType::kF32, {1024, 1024});
  Value* w = b.Input("w", DType::kF32, {1024, 1024});
  b.Output({b.MatMul(x, w)});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  RunOptions base;
  RunOptions tuned;
  tuned.library_efficiency = 0.95;
  auto r1 = (*exe)->RunWithShapes({{1024, 1024}, {1024, 1024}}, base);
  auto r2 = (*exe)->RunWithShapes({{1024, 1024}, {1024, 1024}}, tuned);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r1->profile.device_time_us, r2->profile.device_time_us);
}

// A small graph with several distinct intermediate sizes for the memory-
// mode tests: matmul + softmax over [B, 64] -> [B, 32].
Result<std::unique_ptr<Executable>> CompileMemoryModeGraph() {
  Graph g;
  GraphBuilder b(&g);
  Rng rng(11);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Tensor w(DType::kF32, {64, 32});
  for (int64_t i = 0; i < w.num_elements(); ++i) w.f32_data()[i] = rng.Normal();
  Value* y = b.MatMul(b.Tanh(x), b.Constant(w));
  b.Output({b.Softmax(y)});
  return DiscCompiler::Compile(g, {{"B", ""}});
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.dims() != b.dims() || a.dtype() != b.dtype()) return false;
  return std::memcmp(a.f32_data(), b.f32_data(),
                     static_cast<size_t>(a.num_elements()) * sizeof(float)) ==
         0;
}

TEST(RuntimeTest, ArenaModeDoesOneAllocation) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  ASSERT_TRUE((*exe)->memory_plan().planned);
  RunOptions arena;
  arena.memory_mode = MemoryMode::kArena;
  auto r = (*exe)->RunWithShapes({{16, 64}}, arena);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.alloc_calls, 1);
  EXPECT_EQ(r->profile.alloc_rounding_waste, 0)
      << "arena allocation must land exactly on a size class";
  EXPECT_GT(r->profile.arena_bytes, 0);
  EXPECT_EQ(r->profile.arena_bytes % kArenaAlignment, 0);
  EXPECT_EQ(r->profile.peak_memory_bytes, r->profile.arena_bytes);
}

TEST(RuntimeTest, ArenaAllocationStaysOneOnPlanCacheHit) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  RunOptions arena;
  arena.memory_mode = MemoryMode::kArena;
  auto miss = (*exe)->RunWithShapes({{8, 64}}, arena);
  auto hit = (*exe)->RunWithShapes({{8, 64}}, arena);
  ASSERT_TRUE(miss.ok() && hit.ok());
  EXPECT_FALSE(miss->profile.launch_plan_hit);
  EXPECT_TRUE(hit->profile.launch_plan_hit);
  EXPECT_EQ(hit->profile.alloc_calls, 1);
  EXPECT_EQ(hit->profile.arena_bytes, miss->profile.arena_bytes);
}

TEST(RuntimeTest, MemoryModesProduceBitIdenticalOutputs) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  Rng rng(5);
  Tensor in = RandomF32(&rng, {8, 64});
  RunOptions caching, per_slot, arena;
  per_slot.memory_mode = MemoryMode::kPerSlot;
  arena.memory_mode = MemoryMode::kArena;
  auto r0 = (*exe)->Run({in}, caching);
  auto r1 = (*exe)->Run({in}, per_slot);
  auto r2 = (*exe)->Run({in}, arena);
  ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
  ASSERT_EQ(r0->outputs.size(), 1u);
  EXPECT_TRUE(BitIdentical(r0->outputs[0], r1->outputs[0]));
  EXPECT_TRUE(BitIdentical(r0->outputs[0], r2->outputs[0]));
  // Simulated device work is also identical: only allocation accounting
  // differs between modes.
  EXPECT_DOUBLE_EQ(r0->profile.device_time_us, r2->profile.device_time_us);
  EXPECT_EQ(r0->profile.kernel_launches, r2->profile.kernel_launches);
}

TEST(RuntimeTest, PerSlotModeAllocatesPerSlotNotPerValue) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  RunOptions caching, per_slot;
  per_slot.memory_mode = MemoryMode::kPerSlot;
  auto r0 = (*exe)->RunWithShapes({{16, 64}}, caching);
  auto r1 = (*exe)->RunWithShapes({{16, 64}}, per_slot);
  ASSERT_TRUE(r0.ok() && r1.ok());
  // Reused slots collapse allocator calls; constants still allocate.
  EXPECT_LE(r1->profile.alloc_calls, r0->profile.alloc_calls);
}

TEST(RuntimeTest, ArenaPeakNotAboveMultiSlotPeak) {
  // The acceptance criterion of the arena plan: its peak footprint stays
  // at or below the per-slot plan's on the same shape.
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  RunOptions per_slot, arena;
  per_slot.memory_mode = MemoryMode::kPerSlot;
  arena.memory_mode = MemoryMode::kArena;
  for (int64_t batch : {1, 4, 32, 100}) {
    auto r1 = (*exe)->RunWithShapes({{batch, 64}}, per_slot);
    auto r2 = (*exe)->RunWithShapes({{batch, 64}}, arena);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_LE(r2->profile.peak_memory_bytes, r1->profile.peak_memory_bytes)
        << "batch " << batch;
  }
}

TEST(RuntimeTest, PredictPeakBytesMatchesArenaRun) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  auto predicted = (*exe)->PredictPeakBytes({{24, 64}});
  ASSERT_TRUE(predicted.ok());
  RunOptions arena;
  arena.memory_mode = MemoryMode::kArena;
  auto r = (*exe)->RunWithShapes({{24, 64}}, arena);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*predicted, r->profile.arena_bytes);
  // Prediction answers off the memoized plan after the run, same value.
  auto again = (*exe)->PredictPeakBytes({{24, 64}});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *predicted);
}

TEST(RuntimeTest, ArenaOverLimitIsRetryableResourceExhausted) {
  auto exe = CompileMemoryModeGraph();
  ASSERT_TRUE(exe.ok());
  RunOptions arena;
  arena.memory_mode = MemoryMode::kArena;
  arena.memory_limit_bytes = 1024;  // far below any real footprint
  auto r = (*exe)->RunWithShapes({{64, 64}}, arena);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.status().IsRetryable());
}

}  // namespace
}  // namespace disc
