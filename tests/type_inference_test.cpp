#include "ir/type_inference.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TensorType F32(std::vector<int64_t> dims) {
  return TensorType(DType::kF32, std::move(dims));
}
TensorType I64(std::vector<int64_t> dims) {
  return TensorType(DType::kI64, std::move(dims));
}

Result<TensorType> Infer(OpKind kind, std::vector<TensorType> operands,
                         AttrMap attrs = {}) {
  std::vector<const Tensor*> constants(operands.size(), nullptr);
  auto r = InferOutputTypes(kind, operands, attrs, constants);
  if (!r.ok()) return r.status();
  return (*r)[0];
}

TEST(BroadcastDimsTest, Basic) {
  auto r = BroadcastDims({4, 1}, {1, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{4, 5}));
}

TEST(BroadcastDimsTest, RankExtension) {
  auto r = BroadcastDims({3, 4}, {4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{3, 4}));
}

TEST(BroadcastDimsTest, DynamicMeetsStatic) {
  auto r = BroadcastDims({kDynamicDim, 4}, {8, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{8, 4}));
}

TEST(BroadcastDimsTest, Mismatch) {
  EXPECT_FALSE(BroadcastDims({3}, {4}).ok());
}

TEST(TypeInferenceTest, UnaryPreservesType) {
  auto r = Infer(OpKind::kExp, {F32({kDynamicDim, 8})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x8]");
}

TEST(TypeInferenceTest, BinaryBroadcast) {
  auto r = Infer(OpKind::kAdd, {F32({kDynamicDim, 8}), F32({8})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x8]");
}

TEST(TypeInferenceTest, BinaryDTypeMismatch) {
  EXPECT_FALSE(Infer(OpKind::kAdd, {F32({4}), I64({4})}).ok());
}

TEST(TypeInferenceTest, ComparisonYieldsI1) {
  auto r = Infer(OpKind::kLess, {F32({4}), F32({4})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dtype, DType::kI1);
}

TEST(TypeInferenceTest, CastChangesDType) {
  auto r = Infer(OpKind::kCast, {F32({4})}, {{"to", DType::kI64}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dtype, DType::kI64);
}

TEST(TypeInferenceTest, SelectBroadcastsAllThree) {
  TensorType pred(DType::kI1, {4, 1});
  auto r = InferOutputTypes(OpKind::kSelect, {pred, F32({1, 5}), F32({})},
                            {}, {nullptr, nullptr, nullptr});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].ToString(), "f32[4x5]");
}

TEST(TypeInferenceTest, ReduceDropsDims) {
  auto r = Infer(OpKind::kReduceSum, {F32({2, kDynamicDim, 8})},
                 {{"dims", std::vector<int64_t>{2}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[2x?]");
}

TEST(TypeInferenceTest, ReduceKeepDims) {
  auto r = Infer(OpKind::kReduceMax, {F32({2, 8})},
                 {{"dims", std::vector<int64_t>{1}}, {"keep_dims", 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[2x1]");
}

TEST(TypeInferenceTest, ReduceDimOutOfBounds) {
  EXPECT_FALSE(Infer(OpKind::kReduceSum, {F32({2})},
                     {{"dims", std::vector<int64_t>{5}}})
                   .ok());
}

TEST(TypeInferenceTest, MatMulBasic) {
  auto r = Infer(OpKind::kMatMul, {F32({kDynamicDim, 16}), F32({16, 32})},
                 {{"transpose_a", 0}, {"transpose_b", 0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x32]");
}

TEST(TypeInferenceTest, MatMulBatchedBroadcast) {
  auto r = Infer(OpKind::kMatMul,
                 {F32({kDynamicDim, 12, 64, 64}), F32({kDynamicDim, 12, 64, 8})},
                 {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x12x64x8]");
}

TEST(TypeInferenceTest, MatMulTransposeB) {
  auto r = Infer(OpKind::kMatMul, {F32({4, 16}), F32({32, 16})},
                 {{"transpose_b", 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[4x32]");
}

TEST(TypeInferenceTest, MatMulContractionMismatch) {
  EXPECT_FALSE(Infer(OpKind::kMatMul, {F32({4, 16}), F32({17, 8})}, {}).ok());
}

TEST(TypeInferenceTest, Conv2DStaticShape) {
  auto r = Infer(OpKind::kConv2D,
                 {F32({2, 32, 32, 3}), F32({3, 3, 3, 16})},
                 {{"strides", std::vector<int64_t>{1, 1}},
                  {"padding", std::vector<int64_t>{1, 1}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[2x32x32x16]");
}

TEST(TypeInferenceTest, Conv2DDynamicWidth) {
  auto r = Infer(OpKind::kConv2D,
                 {F32({1, 32, kDynamicDim, 3}), F32({3, 3, 3, 16})},
                 {{"strides", std::vector<int64_t>{2, 2}},
                  {"padding", std::vector<int64_t>{1, 1}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[1x16x?x16]");
}

TEST(TypeInferenceTest, TransposePermutes) {
  auto r = Infer(OpKind::kTranspose, {F32({2, kDynamicDim, 8})},
                 {{"perm", std::vector<int64_t>{2, 0, 1}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[8x2x?]");
}

TEST(TypeInferenceTest, TransposeBadPerm) {
  EXPECT_FALSE(Infer(OpKind::kTranspose, {F32({2, 3})},
                     {{"perm", std::vector<int64_t>{0, 0}}})
                   .ok());
}

TEST(TypeInferenceTest, ReshapeStaticWildcard) {
  auto r = Infer(OpKind::kReshape, {F32({2, 3, 4})},
                 {{"new_shape", std::vector<int64_t>{6, kDynamicDim}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[6x4]");
}

TEST(TypeInferenceTest, ReshapeDynamicInputKeepsWildcard) {
  auto r = Infer(OpKind::kReshape, {F32({kDynamicDim, 3, 4})},
                 {{"new_shape", std::vector<int64_t>{kDynamicDim, 12}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x12]");
}

TEST(TypeInferenceTest, ReshapeCountMismatch) {
  EXPECT_FALSE(Infer(OpKind::kReshape, {F32({2, 3})},
                     {{"new_shape", std::vector<int64_t>{7}}})
                   .ok());
}

TEST(TypeInferenceTest, ReshapeFromConstantShapeOperand) {
  Tensor shape = Tensor::I64({2}, {6, 4});
  std::vector<const Tensor*> constants = {nullptr, &shape};
  auto r = InferOutputTypes(OpKind::kReshape, {F32({2, 3, 4}), I64({2})}, {},
                            constants);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].ToString(), "f32[6x4]");
}

TEST(TypeInferenceTest, ReshapeFromDynamicShapeOperand) {
  auto r = InferOutputTypes(OpKind::kReshape, {F32({2, 3, 4}), I64({2})}, {},
                            {nullptr, nullptr});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].ToString(), "f32[?x?]");
}

TEST(TypeInferenceTest, BroadcastToChecksCompat) {
  auto ok = Infer(OpKind::kBroadcastTo, {F32({1, 8})},
                  {{"new_shape", std::vector<int64_t>{4, 8}}});
  EXPECT_TRUE(ok.ok());
  auto bad = Infer(OpKind::kBroadcastTo, {F32({3, 8})},
                   {{"new_shape", std::vector<int64_t>{4, 8}}});
  EXPECT_FALSE(bad.ok());
}

TEST(TypeInferenceTest, ConcatSumsAxis) {
  auto r = Infer(OpKind::kConcat,
                 {F32({2, kDynamicDim}), F32({3, kDynamicDim})},
                 {{"axis", 0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[5x?]");
}

TEST(TypeInferenceTest, ConcatDynamicAxis) {
  auto r = Infer(OpKind::kConcat, {F32({kDynamicDim, 4}), F32({3, 4})},
                 {{"axis", 0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[?x4]");
}

TEST(TypeInferenceTest, SliceStatic) {
  auto r = Infer(OpKind::kSlice, {F32({10, 8})},
                 {{"starts", std::vector<int64_t>{2, 0}},
                  {"ends", std::vector<int64_t>{8, -1}},
                  {"steps", std::vector<int64_t>{2, 1}}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[3x8]");
}

TEST(TypeInferenceTest, GatherShape) {
  auto r = InferOutputTypes(OpKind::kGather, {F32({10, 4}), I64({2, 3})},
                            {{"axis", 0}}, {nullptr, nullptr});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].ToString(), "f32[2x3x4]");
}

TEST(TypeInferenceTest, PadAddsDims) {
  auto r = Infer(OpKind::kPad, {F32({4, kDynamicDim})},
                 {{"pads_low", std::vector<int64_t>{1, 0}},
                  {"pads_high", std::vector<int64_t>{1, 2}},
                  {"pad_value", 0.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f32[6x?]");
}

TEST(TypeInferenceTest, ShapeOfAndDim) {
  auto r = Infer(OpKind::kShapeOf, {F32({4, kDynamicDim, 8})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "i64[3]");
  auto d = Infer(OpKind::kDim, {F32({4, kDynamicDim})}, {{"index", 1}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "i64[]");
}

TEST(TypeInferenceTest, ConstantFromAttr) {
  AttrMap attrs = {{"value", Tensor::F32({2, 2}, {1, 2, 3, 4})}};
  auto r = InferOutputTypes(OpKind::kConstant, {}, attrs, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].ToString(), "f32[2x2]");
}

}  // namespace
}  // namespace disc
