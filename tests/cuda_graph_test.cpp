// CUDA-Graph-style launch batching: replaying a captured graph pays the
// driver launch latency once per query — but only for repeated shape
// signatures (graphs are shape-static), which is exactly why it cannot
// substitute for dynamic-shape compilation.
#include <gtest/gtest.h>

#include "baselines/dynamic_engine.h"
#include "baselines/static_engine.h"
#include "compiler/compiler.h"
#include "ir/builder.h"

namespace disc {
namespace {

std::unique_ptr<Graph> LaunchHeavyModel() {
  auto g = std::make_unique<Graph>("launchy");
  GraphBuilder b(g.get());
  Value* v = b.Input("x", DType::kF32, {kDynamicDim, 64});
  // Library matmuls are fusion barriers -> one kernel + one library call
  // per iteration, so the run stays launch-heavy.
  for (int i = 0; i < 6; ++i) {
    Tensor w(DType::kF32, {64, 64});
    for (int64_t e = 0; e < 64; ++e) w.f32_data()[e * 64 + e] = 1.0f;
    v = b.Tanh(b.MatMul(v, b.Constant(w)));
  }
  b.Output({v});
  return g;
}

TEST(CudaGraphTest, BatchedRunPaysOneLaunchOverhead) {
  auto g = LaunchHeavyModel();
  auto exe = DiscCompiler::Compile(*g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());
  RunOptions normal;
  RunOptions batched;
  batched.batch_launches = true;
  auto rn = (*exe)->RunWithShapes({{8, 64}}, normal);
  auto rb = (*exe)->RunWithShapes({{8, 64}}, batched);
  ASSERT_TRUE(rn.ok() && rb.ok());
  EXPECT_GT(rn->profile.kernel_launches, 3);
  EXPECT_EQ(rn->profile.kernel_launches, rb->profile.kernel_launches);
  EXPECT_LT(rb->profile.device_time_us, rn->profile.device_time_us);
  // Saving is roughly (launches-1) * (launch_us - replay_us).
  double launches = static_cast<double>(rn->profile.kernel_launches);
  double saved = rn->profile.device_time_us - rb->profile.device_time_us;
  EXPECT_GT(saved, (launches - 1) * 2.0);
}

TEST(CudaGraphTest, EngineReplaysOnlyRepeatedSignatures) {
  auto g = LaunchHeavyModel();
  DynamicProfile profile = DynamicProfile::Disc();
  profile.name = "DISC+graph";
  profile.use_cuda_graph = true;
  DynamicCompilerEngine engine(profile);
  ASSERT_TRUE(engine.Prepare(*g, {{"B", ""}}).ok());

  auto first = engine.Query({{8, 64}}, DeviceSpec::T4());
  auto repeat = engine.Query({{8, 64}}, DeviceSpec::T4());
  auto fresh = engine.Query({{9, 64}}, DeviceSpec::T4());
  ASSERT_TRUE(first.ok() && repeat.ok() && fresh.ok());
  // First occurrence = capture at full launch cost; repeat = replay.
  EXPECT_LT(repeat->device_us, first->device_us);
  // A fresh shape cannot replay.
  EXPECT_GT(fresh->device_us, repeat->device_us);
}

TEST(CudaGraphTest, StaticEngineOptInRepaysCacheHits) {
  auto g = LaunchHeavyModel();
  StaticProfile profile = StaticProfile::Xla();
  profile.use_cuda_graph = true;
  StaticCompilerEngine engine(profile);
  ASSERT_TRUE(engine.Prepare(*g, {{"B", ""}}).ok());
  auto miss = engine.Query({{8, 64}}, DeviceSpec::T4());
  auto hit = engine.Query({{8, 64}}, DeviceSpec::T4());
  ASSERT_TRUE(miss.ok() && hit.ok());
  EXPECT_LT(hit->device_us, miss->device_us);
}

TEST(CudaGraphTest, DefaultProfilesDoNotBatch) {
  auto g = LaunchHeavyModel();
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  ASSERT_TRUE(engine.Prepare(*g, {{"B", ""}}).ok());
  auto q1 = engine.Query({{8, 64}}, DeviceSpec::T4());
  auto q2 = engine.Query({{8, 64}}, DeviceSpec::T4());
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_DOUBLE_EQ(q1->device_us, q2->device_us);
}

}  // namespace
}  // namespace disc
