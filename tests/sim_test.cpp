#include "sim/device.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

KernelStats BaseStats() {
  KernelStats stats;
  stats.bytes_read = 1 << 20;
  stats.bytes_written = 1 << 20;
  stats.flops = 1 << 20;
  stats.index_ops = 1 << 20;
  stats.num_blocks = 512;
  stats.threads_per_block = 256;
  return stats;
}

KernelVariant Generic() { return KernelVariant{}; }

TEST(DeviceSpecTest, A10BeatsT4OnPaper) {
  DeviceSpec a10 = DeviceSpec::A10();
  DeviceSpec t4 = DeviceSpec::T4();
  EXPECT_GT(a10.fp32_tflops, t4.fp32_tflops);
  EXPECT_GT(a10.dram_gbps, t4.dram_gbps);
  EXPECT_GT(a10.sm_count, t4.sm_count);
}

TEST(DeviceSpecTest, CpuTradesThroughputForLatency) {
  DeviceSpec cpu = DeviceSpec::XeonCpu();
  DeviceSpec t4 = DeviceSpec::T4();
  EXPECT_LT(cpu.fp32_tflops, t4.fp32_tflops);
  EXPECT_LT(cpu.kernel_launch_us, t4.kernel_launch_us);

  // A tiny kernel (launch-bound) is faster on CPU; a large one on GPU.
  DeviceModel cpu_model(cpu);
  DeviceModel gpu_model(t4);
  KernelStats tiny;
  tiny.bytes_read = 1024;
  tiny.bytes_written = 1024;
  tiny.num_blocks = 1;
  tiny.threads_per_block = 32;
  KernelStats big = BaseStats();
  big.bytes_read = 1 << 28;
  big.bytes_written = 1 << 28;
  big.num_blocks = 1 << 16;
  KernelVariant generic;
  EXPECT_LT(cpu_model.EstimateGenerated(tiny, generic).time_us,
            gpu_model.EstimateGenerated(tiny, generic).time_us);
  EXPECT_GT(cpu_model.EstimateGenerated(big, generic).time_us,
            gpu_model.EstimateGenerated(big, generic).time_us);
}

TEST(DeviceModelTest, LaunchOverheadIsAdditive) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats tiny;
  tiny.bytes_read = 4;
  tiny.bytes_written = 4;
  tiny.num_blocks = 1;
  tiny.threads_per_block = 32;
  KernelCost cost = model.EstimateGenerated(tiny, Generic());
  EXPECT_GE(cost.time_us, model.launch_overhead_us());
  EXPECT_NEAR(cost.time_us - cost.body_us, model.launch_overhead_us(), 1e-9);
}

TEST(DeviceModelTest, MonotoneInBytes) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats small = BaseStats();
  KernelStats large = BaseStats();
  large.bytes_read *= 8;
  large.bytes_written *= 8;
  EXPECT_LT(model.EstimateGenerated(small, Generic()).time_us,
            model.EstimateGenerated(large, Generic()).time_us);
}

TEST(DeviceModelTest, MonotoneInFlops) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats compute = BaseStats();
  compute.bytes_read = 1024;
  compute.bytes_written = 1024;
  compute.flops = 1 << 28;  // clearly compute bound
  KernelStats more = compute;
  more.flops *= 4;
  auto c1 = model.EstimateGenerated(compute, Generic());
  auto c2 = model.EstimateGenerated(more, Generic());
  EXPECT_FALSE(c1.memory_bound);
  EXPECT_LT(c1.time_us, c2.time_us);
}

TEST(DeviceModelTest, VectorizationImprovesMemoryBoundKernels) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats stats = BaseStats();
  stats.flops = 0;
  KernelVariant vec;
  vec.vector_width = 4;
  EXPECT_LT(model.EstimateGenerated(stats, vec).body_us,
            model.EstimateGenerated(stats, Generic()).body_us);
}

TEST(DeviceModelTest, BroadcastFreeImprovesComputeBoundKernels) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats stats = BaseStats();
  stats.flops = 1 << 28;
  stats.bytes_read = 1024;
  stats.bytes_written = 1024;
  KernelVariant bf;
  bf.broadcast_free = true;
  EXPECT_LT(model.EstimateGenerated(stats, bf).body_us,
            model.EstimateGenerated(stats, Generic()).body_us);
}

TEST(DeviceModelTest, LowOccupancyHurtsBandwidth) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats few = BaseStats();
  few.flops = 0;
  few.num_blocks = 4;  // 1024 threads: cannot saturate DRAM
  KernelStats many = few;
  many.num_blocks = 512;
  auto cost_few = model.EstimateGenerated(few, Generic());
  auto cost_many = model.EstimateGenerated(many, Generic());
  EXPECT_GT(cost_few.body_us, cost_many.body_us);
  EXPECT_LT(cost_few.utilization, cost_many.utilization);
}

TEST(DeviceModelTest, TinyBlockReducePaysPenalty) {
  DeviceModel model(DeviceSpec::T4());
  KernelStats stats = BaseStats();
  stats.flops = 0;
  stats.threads_per_block = 32;  // tiny rows
  stats.num_blocks = 4096;
  KernelVariant block;
  block.schedule = ReduceSchedule::kBlockPerRow;
  KernelVariant warp;
  warp.schedule = ReduceSchedule::kWarpPerRow;
  KernelStats warp_stats = stats;
  warp_stats.threads_per_block = 256;
  warp_stats.num_blocks = 512;
  EXPECT_GT(model.EstimateGenerated(stats, block).body_us,
            model.EstimateGenerated(warp_stats, warp).body_us);
}

TEST(DeviceModelTest, SameKernelFasterOnA10) {
  KernelStats stats = BaseStats();
  DeviceModel a10(DeviceSpec::A10());
  DeviceModel t4(DeviceSpec::T4());
  EXPECT_LT(a10.EstimateGenerated(stats, Generic()).body_us,
            t4.EstimateGenerated(stats, Generic()).body_us);
}

TEST(DeviceModelTest, LibraryEfficiencyScalesComputeBoundTime) {
  DeviceModel model(DeviceSpec::T4());
  LibraryCallStats stats;
  stats.flops = 1LL << 32;
  stats.bytes_read = 1024;
  stats.bytes_written = 1024;
  auto base = model.EstimateLibrary(stats, 0.85);
  auto tuned = model.EstimateLibrary(stats, 0.92);
  EXPECT_FALSE(base.memory_bound);
  EXPECT_GT(base.body_us, tuned.body_us);
  EXPECT_NEAR(base.body_us / tuned.body_us, 0.92 / 0.85, 1e-6);
}

TEST(DeviceModelTest, LibraryMemoryBoundIgnoresEfficiency) {
  DeviceModel model(DeviceSpec::T4());
  LibraryCallStats stats;
  stats.flops = 1024;
  stats.bytes_read = 1 << 26;
  stats.bytes_written = 1 << 26;
  auto c = model.EstimateLibrary(stats, 0.85);
  EXPECT_TRUE(c.memory_bound);
  EXPECT_NEAR(c.body_us, model.EstimateLibrary(stats, 0.92).body_us, 1e-9);
}

TEST(DeviceModelTest, ScheduleNamesAreStable) {
  EXPECT_STREQ(ReduceScheduleName(ReduceSchedule::kNone), "none");
  EXPECT_STREQ(ReduceScheduleName(ReduceSchedule::kWarpPerRow),
               "warp_per_row");
  EXPECT_STREQ(ReduceScheduleName(ReduceSchedule::kBlockPerRow),
               "block_per_row");
}

}  // namespace
}  // namespace disc
