#include "ir/parser.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/eval.h"
#include "support/rng.h"

namespace disc {
namespace {

TEST(ParserTest, MinimalGraph) {
  auto g = ParseGraph(R"(graph tiny (%0: f32[4]) {
    %1 = relu(%0) : f32[4]
    return %1
  })");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->name(), "tiny");
  EXPECT_EQ((*g)->num_nodes(), 1);
  EXPECT_EQ((*g)->outputs()[0]->producer()->kind(), OpKind::kRelu);
}

TEST(ParserTest, DynamicDimsAndAttrs) {
  auto g = ParseGraph(R"(graph t (%0: f32[?x8]) {
    %1 = reduce_sum(%0) {dims = [1], keep_dims = 1} : f32[?x1]
    return %1
  })");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  Node* node = (*g)->outputs()[0]->producer();
  EXPECT_EQ(node->GetIntListAttr("dims"), (std::vector<int64_t>{1}));
  EXPECT_EQ(node->GetIntAttr("keep_dims", 0), 1);
  EXPECT_EQ(node->output(0)->type().ToString(), "f32[?x1]");
}

TEST(ParserTest, ConstantTensorLiteral) {
  auto g = ParseGraph(R"(graph c () {
    %0 = constant() {value = f32[2x2] {1, 2.5, -3, 4}} : f32[2x2]
    return %0
  })");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Tensor& t =
      (*g)->outputs()[0]->producer()->GetTensorAttr("value");
  EXPECT_FLOAT_EQ(t.f32_data()[1], 2.5f);
  EXPECT_FLOAT_EQ(t.f32_data()[2], -3.0f);
}

TEST(ParserTest, DTypeAttr) {
  auto g = ParseGraph(R"(graph c (%0: f32[3]) {
    %1 = cast(%0) {to = i64} : i64[3]
    return %1
  })");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->outputs()[0]->dtype(), DType::kI64);
}

TEST(ParserTest, RejectsUnknownOp) {
  auto g = ParseGraph(R"(graph b (%0: f32[2]) {
    %1 = frobnicate(%0) : f32[2]
    return %1
  })");
  EXPECT_FALSE(g.ok());
}

TEST(ParserTest, RejectsUndefinedValue) {
  auto g = ParseGraph(R"(graph b (%0: f32[2]) {
    %1 = relu(%9) : f32[2]
    return %1
  })");
  EXPECT_FALSE(g.ok());
}

TEST(ParserTest, RejectsTypeMismatch) {
  auto g = ParseGraph(R"(graph b (%0: f32[2]) {
    %1 = relu(%0) : f32[3]
    return %1
  })");
  EXPECT_FALSE(g.ok());  // verifier catches the declared type
}

TEST(ParserTest, RejectsTrailingGarbage) {
  auto g = ParseGraph(R"(graph b (%0: f32[2]) {
    %1 = relu(%0) : f32[2]
    return %1
  } extra)");
  EXPECT_FALSE(g.ok());
}

TEST(ParserTest, RoundTripPreservesStructureAndSemantics) {
  Graph g("roundtrip");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* w = b.Constant(Tensor::F32({8, 4}, [] {
    std::vector<float> v(32);
    for (size_t i = 0; i < v.size(); ++i) v[i] = 0.1f * (i % 7);
    return v;
  }()));
  Value* h = b.Relu(b.MatMul(x, w));
  Value* s = b.Softmax(h);
  b.Output({s, h});

  auto parsed = ParseGraph(g.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << g.ToString();
  EXPECT_EQ((*parsed)->num_nodes(), g.num_nodes());
  EXPECT_EQ((*parsed)->outputs().size(), g.outputs().size());

  // Same numerics.
  Rng rng(5);
  Tensor in(DType::kF32, {3, 8});
  for (int i = 0; i < 24; ++i) in.f32_data()[i] = rng.Normal();
  auto want = EvaluateGraph(g, {in});
  auto got = EvaluateGraph(**parsed, {in});
  ASSERT_TRUE(want.ok() && got.ok());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose((*got)[i], (*want)[i]));
  }
}

TEST(ParserTest, RoundTripIsAFixpoint) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* flat = b.Reshape(x, {-1});
  Value* back = b.ReshapeDynamic(b.Exp(flat), b.ShapeOf(x));
  b.Output({back});
  auto once = ParseGraph(g.ToString());
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  auto twice = ParseGraph((*once)->ToString());
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  EXPECT_EQ((*once)->ToString(), (*twice)->ToString());
}

TEST(ParserTest, MultiRankTypesParse) {
  auto g = ParseGraph(R"(graph r (%0: f32[], %1: i1[2x3x4x5]) {
    return %0, %1
  })");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->inputs()[0]->rank(), 0);
  EXPECT_EQ((*g)->inputs()[1]->rank(), 4);
  EXPECT_EQ((*g)->inputs()[1]->dtype(), DType::kI1);
}

TEST(ParserTest, TransposeAttrRoundTrip) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, kDynamicDim, 4});
  b.Output({b.Transpose(x, {2, 0, 1})});
  auto parsed = ParseGraph(g.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)->outputs()[0]->producer()->GetIntListAttr("perm"),
            (std::vector<int64_t>{2, 0, 1}));
}

}  // namespace
}  // namespace disc
