// Per-request causal tracing: the ledger invariant (phases sum to the
// measured end-to-end latency, on every completed request), trace-id
// propagation across the serving -> engine -> compile-service layers
// (including the fallback-chain and async hot-swap paths, and across
// threads), tail-blame attribution, and the shape-aware outlier flight
// recorder.
#include "support/blame.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "baselines/async_engine.h"
#include "baselines/dynamic_engine.h"
#include "baselines/fallback_chain.h"
#include "baselines/interpreter_engine.h"
#include "compile_service/compile_service.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/failpoint.h"
#include "support/flight_recorder.h"
#include "support/json.h"

namespace disc {
namespace {

constexpr int64_t kHidden = 32;

void BuildModel(Graph* g) {
  GraphBuilder b(g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  b.Output({b.Softmax(b.Relu(x))});
}

std::vector<std::vector<int64_t>> ShapeFor(int64_t batch, int64_t seq) {
  return {{batch, seq, kHidden}};
}

void ExpectLedgersSumToE2e(const ServingStats& stats) {
  ASSERT_EQ(static_cast<int64_t>(stats.completed_requests.size()),
            stats.completed);
  for (const CompletedRequest& r : stats.completed_requests) {
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_NEAR(r.ledger.TotalUs(), r.e2e_us,
                1e-6 * std::max(1.0, r.e2e_us))
        << "request " << r.request_id << ": " << r.ledger.ToString();
  }
}

TEST(PhaseLedgerTest, NamesValuesAndTotalStayInSync) {
  PhaseLedger ledger;
  ledger.batch_form_us = 1.0;
  ledger.queue_us = 2.0;
  ledger.backoff_us = 4.0;
  ledger.decode_wait_us = 8.0;
  ledger.compile_stall_us = 16.0;
  ledger.host_plan_us = 32.0;
  ledger.alloc_us = 64.0;
  ledger.device_us = 128.0;
  EXPECT_DOUBLE_EQ(ledger.TotalUs(), 255.0);
  const auto& names = PhaseLedger::PhaseNames();
  const auto values = ledger.PhaseValues();
  ASSERT_EQ(names.size(), values.size());
  ASSERT_EQ(names.size(), 8u);
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_DOUBLE_EQ(sum, ledger.TotalUs());
  // Distinct powers of two: each value identifies its phase uniquely.
  EXPECT_EQ(names.front(), "batch_form");
  EXPECT_EQ(names.back(), "device");
  EXPECT_DOUBLE_EQ(values.front(), 1.0);
  EXPECT_DOUBLE_EQ(values.back(), 128.0);
  EXPECT_STREQ(ledger.DominantPhase(), "device");
}

TEST(RequestContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(RequestContext::Current(), nullptr);
  EXPECT_EQ(RequestContext::CurrentTraceId(), 0u);
  RequestContext outer(RequestContext::MintTraceId());
  {
    RequestContextScope outer_scope(&outer);
    EXPECT_EQ(RequestContext::CurrentTraceId(), outer.trace_id);
    RequestContext inner(RequestContext::MintTraceId());
    {
      RequestContextScope inner_scope(&inner);
      EXPECT_EQ(RequestContext::CurrentTraceId(), inner.trace_id);
    }
    EXPECT_EQ(RequestContext::CurrentTraceId(), outer.trace_id);
  }
  EXPECT_EQ(RequestContext::Current(), nullptr);
}

TEST(RequestContextTest, MintedIdsAreUniqueAcrossThreads) {
  std::mutex mu;
  std::set<uint64_t> ids;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::vector<uint64_t> local;
      for (int i = 0; i < 256; ++i) local.push_back(RequestContext::MintTraceId());
      std::lock_guard<std::mutex> lock(mu);
      for (uint64_t id : local) {
        EXPECT_NE(id, 0u);
        EXPECT_TRUE(ids.insert(id).second) << "duplicate trace id " << id;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ids.size(), 4u * 256u);
}

// The tentpole invariant, on the real serving path: every completed
// request's ledger sums to its end-to-end latency, through the
// DISC->interpreter fallback chain with a fixed lazy-compile stall (the
// compile_stall phase) and priced allocator calls (the alloc phase).
TEST(ServingLedgerTest, LedgersSumToEndToEndThroughFallbackChain) {
  Graph graph("model");
  BuildModel(&graph);
  FallbackChainOptions chain_options;
  chain_options.compile_stall_us = 400.0;
  DynamicProfile profile = DynamicProfile::Disc();
  profile.per_alloc_host_us = 0.05;
  EngineFallbackChain chain(
      std::make_unique<DynamicCompilerEngine>(profile),
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      chain_options);
  DISC_CHECK_OK(chain.Prepare(graph, {{"B", "S", ""}}));

  auto requests = SyntheticRequestStream(64, 50.0, 3);
  BatcherOptions options;
  auto stats = SimulateServing(&chain, ShapeFor, requests, options,
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->completed, 64);
  ExpectLedgersSumToE2e(*stats);
  // The priced allocator phase must show up somewhere.
  double total_alloc = 0.0;
  for (const CompletedRequest& r : stats->completed_requests) {
    total_alloc += r.ledger.alloc_us;
  }
  EXPECT_GT(total_alloc, 0.0);
}

// Trace ids survive the degraded route: a compile outage forces the
// chain onto its interpreter leg; the degraded requests still carry
// minted trace ids, and their ledgers (including the failed-compile
// stall) still sum to e2e.
TEST(ServingLedgerTest, TraceIdsSurviveFallbackAndOutage) {
  FailpointRegistry::Global().DisarmAll();
  DISC_CHECK_OK(FailpointRegistry::Global().ArmFromSpec(
      "compiler.compile=always:max=5"));
  Graph graph("model");
  BuildModel(&graph);
  FallbackChainOptions chain_options;
  chain_options.compile_stall_us = 300.0;
  chain_options.failure_threshold = 3;
  chain_options.cooldown_us = 5000.0;
  EngineFallbackChain chain(
      std::make_unique<DynamicCompilerEngine>(DynamicProfile::Disc()),
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      chain_options);
  DISC_CHECK_OK(chain.Prepare(graph, {{"B", "S", ""}}));

  auto requests = SyntheticRequestStream(48, 80.0, 5);
  auto stats = SimulateServing(&chain, ShapeFor, requests, BatcherOptions{},
                               DeviceSpec::T4());
  FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->degraded, 0);
  ExpectLedgersSumToE2e(*stats);
  std::set<uint64_t> ids;
  bool degraded_with_stall = false;
  for (const CompletedRequest& r : stats->completed_requests) {
    EXPECT_TRUE(ids.insert(r.trace_id).second)
        << "duplicate trace id " << r.trace_id;
    if (r.degraded && r.ledger.compile_stall_us > 0.0) {
      degraded_with_stall = true;
    }
  }
  // The early degraded requests paid the doomed compile attempts' stall —
  // the ledger attributes it instead of losing it.
  EXPECT_TRUE(degraded_with_stall);
}

// Trace ids survive the async hot-swap path: early requests serve on the
// interpreter leg, the compiled executable swaps in mid-stream, and every
// request on both routes carries a valid ledger.
TEST(ServingLedgerTest, LedgersValidAcrossAsyncHotSwap) {
  Graph graph("model");
  BuildModel(&graph);
  CompileServiceOptions service_options;
  service_options.num_workers = 1;
  CompileService service(service_options);
  AsyncEngineOptions async_options;
  async_options.simulated_compile_latency_us = 2000.0;  // deterministic gate
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      async_options);
  DISC_CHECK_OK(engine.Prepare(graph, {{"B", "S", ""}}));

  auto requests = SyntheticRequestStream(96, 60.0, 9);
  auto stats = SimulateServing(&engine, ShapeFor, requests, BatcherOptions{},
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  service.Drain();
  EXPECT_GT(engine.swaps(), 0);
  EXPECT_GT(stats->degraded, 0);                    // pre-swap route used
  EXPECT_LT(stats->degraded, stats->completed);     // post-swap route used
  ExpectLedgersSumToE2e(*stats);
}

// Cross-thread propagation into the compile service: a job submitted
// under a request's context carries the captured trace id in its timeline
// entry, even though it runs on a worker thread.
TEST(CompileServiceTraceTest, SubmitCapturesOriginTraceId) {
  Graph graph("model");
  BuildModel(&graph);
  CompileService service;
  RequestContext context(RequestContext::MintTraceId());
  CompileJobHandle handle;
  {
    RequestContextScope scope(&context);
    CompileJobRequest request;
    request.model_name = "model";
    request.graph = &graph;
    request.labels = {{"B", "S", ""}};
    handle = service.Submit(std::move(request));
  }
  handle.Wait();
  service.Drain();
  bool found = false;
  for (const JobTimelineEntry& entry : service.JobTimeline()) {
    if (entry.job_id == handle.job_id()) {
      EXPECT_EQ(entry.origin_trace_id, context.trace_id);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // And the human-readable timeline prints the causal link.
  EXPECT_NE(service.JobTimelineString().find("caused-by trace_id="),
            std::string::npos);
}

// Four serving threads, each with its own engine and stream: ledgers hold
// on every thread and trace ids never collide across threads.
TEST(ServingLedgerTest, MultiThreadedServingMintsUniqueIdsAndValidLedgers) {
  constexpr int kThreads = 4;
  std::vector<ServingStats> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      Graph graph("model");
      BuildModel(&graph);
      DynamicCompilerEngine engine(DynamicProfile::Disc());
      DISC_CHECK_OK(engine.Prepare(graph, {{"B", "S", ""}}));
      auto requests =
          SyntheticRequestStream(64, 50.0, 100 + static_cast<uint64_t>(t));
      auto stats = SimulateServing(&engine, ShapeFor, requests,
                                   BatcherOptions{}, DeviceSpec::T4());
      DISC_CHECK_OK(stats.status());
      results[t] = *stats;
    });
  }
  for (auto& th : threads) th.join();
  std::set<uint64_t> ids;
  for (const ServingStats& stats : results) {
    EXPECT_EQ(stats.completed, 64);
    ExpectLedgersSumToE2e(stats);
    for (const CompletedRequest& r : stats.completed_requests) {
      EXPECT_TRUE(ids.insert(r.trace_id).second)
          << "trace id " << r.trace_id << " minted twice";
    }
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads) * 64u);
}

CompletedRequest MakeRequest(uint64_t trace_id, const std::string& signature,
                             double device_us, double queue_us) {
  CompletedRequest r;
  r.trace_id = trace_id;
  r.request_id = static_cast<int64_t>(trace_id);
  r.signature = signature;
  r.ledger.device_us = device_us;
  r.ledger.queue_us = queue_us;
  r.e2e_us = r.ledger.TotalUs();
  return r;
}

TEST(BlameReportTest, SharesSumToOneAndTailBlamesTheRightPhase) {
  TailBlameAggregator aggregator;
  // 99 fast device-bound requests and one slow queue-bound straggler.
  for (uint64_t i = 1; i <= 99; ++i) {
    aggregator.Add(MakeRequest(i, "4x32", /*device_us=*/100.0,
                               /*queue_us=*/10.0));
  }
  aggregator.Add(MakeRequest(100, "8x128", /*device_us=*/100.0,
                             /*queue_us=*/5000.0));
  BlameReport report = aggregator.Compute(99.0);
  EXPECT_EQ(report.total_requests, 100);
  EXPECT_GE(report.tail_requests, 1);
  double overall_sum = 0.0;
  double tail_sum = 0.0;
  double tail_queue_share = 0.0;
  double tail_device_share = 0.0;
  for (const auto& [phase, share] : report.overall_shares) {
    overall_sum += share;
  }
  for (const auto& [phase, share] : report.tail_shares) {
    tail_sum += share;
    if (phase == "queue") tail_queue_share = share;
    if (phase == "device") tail_device_share = share;
  }
  EXPECT_NEAR(overall_sum, 1.0, 1e-9);
  EXPECT_NEAR(tail_sum, 1.0, 1e-9);
  // The tail is the straggler: queue owns it.
  EXPECT_GT(tail_queue_share, tail_device_share);
  ASSERT_FALSE(report.tail_signatures.empty());
  EXPECT_EQ(report.tail_signatures.front().first, "8x128");
}

TEST(BlameReportTest, JsonRoundTripValidates) {
  TailBlameAggregator aggregator;
  for (uint64_t i = 1; i <= 20; ++i) {
    aggregator.Add(MakeRequest(i, "2x64", 50.0 + static_cast<double>(i),
                               5.0));
  }
  BlameReport report = aggregator.Compute(90.0);
  const std::string json_text = report.ToJson().SerializePretty();
  double sum = 0.0;
  Status valid = ValidateBlameReportJson(json_text, 1e-6, &sum);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Corrupting a share must fail validation.
  std::string corrupt = json_text;
  size_t pos = corrupt.find("\"device\"");
  ASSERT_NE(pos, std::string::npos);
  pos = corrupt.find(':', pos);
  corrupt.insert(pos + 1, " 0.5 +");
  EXPECT_FALSE(ValidateBlameReportJson(corrupt, 1e-6, &sum).ok());
}

TEST(BlameReportTest, EmptyAggregatorProducesEmptyReport) {
  TailBlameAggregator aggregator;
  BlameReport report = aggregator.Compute(99.0);
  EXPECT_EQ(report.total_requests, 0);
  EXPECT_EQ(report.tail_requests, 0);
  EXPECT_TRUE(report.tail_shares.empty());
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder& recorder = FlightRecorder::Global();
    recorder.Clear();
    FlightRecorder::Options options;
    options.capacity = 4;
    options.min_samples = 8;
    options.stddev_threshold = 3.0;
    options.min_inflation = 1.25;
    recorder.Configure(options);
    recorder.Enable();
  }
  void TearDown() override {
    FlightRecorder::Global().Disable();
    FlightRecorder::Global().Clear();
  }

  PhaseLedger DeviceLedger(double us) {
    PhaseLedger ledger;
    ledger.device_us = us;
    return ledger;
  }
};

TEST_F(FlightRecorderTest, RetainsOnlyPerSignatureOutliers) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // Warm two signatures: "1x32" around 100us, "16x128" around 800us.
  for (int i = 0; i < 20; ++i) {
    double small = 100.0 + (i % 5);
    double large = 800.0 + (i % 5);
    EXPECT_FALSE(recorder.Observe("1x32", small, 0.0, 1000 + i,
                                  DeviceLedger(small)));
    EXPECT_FALSE(recorder.Observe("16x128", large, 0.0, 2000 + i,
                                  DeviceLedger(large)));
  }
  // 500us is unremarkable globally (well under the large signature's
  // mean) but a wild outlier for "1x32" — shape-awareness is the point.
  EXPECT_TRUE(recorder.Observe("1x32", 500.0, 0.0, 42, DeviceLedger(500.0),
                               {{"note", "injected"}}));
  EXPECT_FALSE(
      recorder.Observe("16x128", 810.0, 0.0, 43, DeviceLedger(810.0)));
  auto records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, 42u);
  EXPECT_EQ(records[0].signature, "1x32");
  EXPECT_GT(records[0].signature_count, 0);
  EXPECT_NEAR(records[0].signature_mean_us, 102.0, 5.0);
  ASSERT_EQ(records[0].annotations.size(), 1u);
  EXPECT_EQ(records[0].annotations[0].first, "note");
}

TEST_F(FlightRecorderTest, ColdSignaturesNeverFlagTheirOwnWarmup) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // Wildly varying latencies, all below min_samples: nothing retained.
  for (int i = 0; i < 7; ++i) {
    double us = (i % 2 == 0) ? 10.0 : 10000.0;
    EXPECT_FALSE(recorder.Observe("2x64", us, 0.0, 100 + i, DeviceLedger(us)));
  }
  EXPECT_EQ(recorder.stats().retained, 0);
}

TEST_F(FlightRecorderTest, RingIsBoundedAndCountsDrops) {
  FlightRecorder& recorder = FlightRecorder::Global();
  for (int i = 0; i < 20; ++i) {
    recorder.Observe("1x16", 100.0, 0.0, 500 + i, DeviceLedger(100.0));
  }
  // Ten clear outliers against capacity 4: ring keeps the newest four.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(recorder.Observe("1x16", 1000.0 + i, 0.0, 600 + i,
                                 DeviceLedger(1000.0 + i)));
  }
  auto records = recorder.Snapshot();
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(records.back().trace_id, 609u);  // newest retained
  const FlightRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.retained, 10);
  EXPECT_EQ(stats.dropped, 6);
}

TEST_F(FlightRecorderTest, DisabledObserveIsANoOp) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Disable();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(
        recorder.Observe("1x8", 100.0, 0.0, 700 + i, DeviceLedger(100.0)));
  }
  EXPECT_EQ(recorder.stats().observed, 0);
  double mean = 0.0, stddev = 0.0;
  int64_t count = 0;
  recorder.SignatureStats("1x8", &mean, &stddev, &count);
  EXPECT_EQ(count, 0);
}

// End-to-end: serving with the recorder on retains an injected
// shape-signature outlier (a batch that paid retry backoff) and the
// serving latency histogram carries its trace id as an exemplar.
TEST(FlightRecorderServingTest, ServingRetainsInjectedOutlier) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  FlightRecorder::Options options;
  options.capacity = 16;
  options.min_samples = 4;
  recorder.Configure(options);
  recorder.Enable();
  FailpointRegistry::Global().DisarmAll();

  Graph graph("model");
  BuildModel(&graph);
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  DISC_CHECK_OK(engine.Prepare(graph, {{"B", "S", ""}}));
  // A steady one-request-per-batch stream, then a kernel fault window that
  // makes a few batches pay retry backoff — outliers for their signature.
  auto requests = SyntheticRequestStream(64, 200.0, 13);
  BatcherOptions batcher;
  batcher.max_batch = 1;
  batcher.max_retries = 2;
  batcher.retry_backoff_us = 2000.0;
  DISC_CHECK_OK(FailpointRegistry::Global().ArmFromSpec(
      "runtime.kernel=every:29:code=unavailable"));
  auto stats = SimulateServing(&engine, ShapeFor, requests, batcher,
                               DeviceSpec::T4());
  FailpointRegistry::Global().DisarmAll();
  recorder.Disable();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->retries, 0);
  ExpectLedgersSumToE2e(*stats);

  auto records = recorder.Snapshot();
  ASSERT_GT(records.size(), 0u);
  // The injected cause must be visible in the retained evidence: at least
  // one outlier's ledger shows the retry backoff. (Faulted batches also
  // delay their neighbors, so queue-dominant outliers are legitimate too.)
  std::set<uint64_t> retained_ids;
  bool backoff_outlier = false;
  for (const FlightRecord& r : records) {
    retained_ids.insert(r.trace_id);
    if (r.ledger.backoff_us > 0.0) backoff_outlier = true;
  }
  EXPECT_TRUE(backoff_outlier)
      << "no retained outlier paid backoff; first: " << records[0].ToString();
  // The retained trace ids are real completed requests.
  std::set<uint64_t> completed_ids;
  for (const CompletedRequest& r : stats->completed_requests) {
    completed_ids.insert(r.trace_id);
  }
  for (uint64_t id : retained_ids) {
    EXPECT_TRUE(completed_ids.count(id)) << "unknown retained id " << id;
  }
  recorder.Clear();
}

}  // namespace
}  // namespace disc
