#include "ir/eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.h"
#include "support/rng.h"

namespace disc {
namespace {

Tensor RandomF32(Rng* rng, std::vector<int64_t> dims) {
  Tensor t(DType::kF32, std::move(dims));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.f32_data()[i] = rng->Normal();
  }
  return t;
}

std::vector<Tensor> Eval(const Graph& g, std::vector<Tensor> inputs) {
  auto r = EvaluateGraph(g, inputs);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Tensor>{};
}

TEST(EvalTest, AddWithBroadcast) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3});
  Value* y = b.Input("y", DType::kF32, {3});
  b.Output({b.Add(x, y)});
  auto out = Eval(g, {Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6}),
                      Tensor::F32({3}, {10, 20, 30})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(Tensor::AllClose(
      out[0], Tensor::F32({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(EvalTest, UnaryMath) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  b.Output({b.Exp(x), b.Relu(x), b.Abs(x), b.Sigmoid(x)});
  auto out = Eval(g, {Tensor::F32({4}, {-1, 0, 1, 2})});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0].f32_data()[0], std::exp(-1.0f), 1e-6);
  EXPECT_EQ(out[1].f32_data()[0], 0.0f);
  EXPECT_EQ(out[1].f32_data()[3], 2.0f);
  EXPECT_EQ(out[2].f32_data()[0], 1.0f);
  EXPECT_NEAR(out[3].f32_data()[1], 0.5f, 1e-6);
}

TEST(EvalTest, CompareAndSelect) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* pred = b.Greater(x, b.ScalarF32(0.0f));
  b.Output({b.Select(pred, x, b.Neg(x))});  // == abs
  auto out = Eval(g, {Tensor::F32({4}, {-3, -1, 2, 0})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({4}, {3, 1, 2, 0})));
}

TEST(EvalTest, IntegerDivModTruncate) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kI64, {3});
  Value* y = b.Input("y", DType::kI64, {3});
  b.Output({b.Div(x, y), b.Binary(OpKind::kMod, x, y)});
  auto out = Eval(g, {Tensor::I64({3}, {7, 8, 9}), Tensor::I64({3}, {2, 4, 5})});
  EXPECT_EQ(out[0].i64_data()[0], 3);
  EXPECT_EQ(out[0].i64_data()[1], 2);
  EXPECT_EQ(out[1].i64_data()[2], 4);
}

TEST(EvalTest, ReduceOps) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3});
  b.Output({b.ReduceSum(x, {1}), b.ReduceMax(x, {0}),
            b.ReduceMean(x, {0, 1}), b.Reduce(OpKind::kReduceMin, x, {1})});
  auto out = Eval(g, {Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({2}, {6, 15})));
  EXPECT_TRUE(Tensor::AllClose(out[1], Tensor::F32({3}, {4, 5, 6})));
  EXPECT_NEAR(out[2].f32_data()[0], 3.5f, 1e-6);
  EXPECT_TRUE(Tensor::AllClose(out[3], Tensor::F32({2}, {1, 4})));
}

TEST(EvalTest, ReduceKeepDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3});
  b.Output({b.ReduceSum(x, {1}, /*keep=*/true)});
  auto out = Eval(g, {Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6})});
  EXPECT_EQ(out[0].dims(), (std::vector<int64_t>{2, 1}));
}

TEST(EvalTest, MatMul2D) {
  Graph g;
  GraphBuilder b(&g);
  Value* a = b.Input("a", DType::kF32, {2, 3});
  Value* w = b.Input("w", DType::kF32, {3, 2});
  b.Output({b.MatMul(a, w)});
  auto out = Eval(g, {Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6}),
                      Tensor::F32({3, 2}, {1, 0, 0, 1, 1, 1})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({2, 2}, {4, 5, 10, 11})));
}

TEST(EvalTest, MatMulTransposedAgreesWithExplicitTranspose) {
  Rng rng(42);
  Tensor a = RandomF32(&rng, {4, 6});
  Tensor w = RandomF32(&rng, {5, 6});

  Graph g1;
  GraphBuilder b1(&g1);
  Value* av = b1.Input("a", DType::kF32, {4, 6});
  Value* wv = b1.Input("w", DType::kF32, {5, 6});
  b1.Output({b1.MatMul(av, wv, false, /*transpose_b=*/true)});

  Graph g2;
  GraphBuilder b2(&g2);
  Value* av2 = b2.Input("a", DType::kF32, {4, 6});
  Value* wv2 = b2.Input("w", DType::kF32, {5, 6});
  b2.Output({b2.MatMul(av2, b2.Transpose(wv2, {1, 0}))});

  auto r1 = Eval(g1, {a, w});
  auto r2 = Eval(g2, {a, w});
  EXPECT_TRUE(Tensor::AllClose(r1[0], r2[0]));
}

TEST(EvalTest, BatchedMatMulBroadcastsBatchDims) {
  Rng rng(1);
  Tensor a = RandomF32(&rng, {3, 2, 4});
  Tensor w = RandomF32(&rng, {4, 5});  // broadcast over batch

  Graph g;
  GraphBuilder b(&g);
  Value* av = b.Input("a", DType::kF32, {3, 2, 4});
  Value* wv = b.Input("w", DType::kF32, {4, 5});
  b.Output({b.MatMul(av, wv)});
  auto out = Eval(g, {a, w});
  ASSERT_EQ(out[0].dims(), (std::vector<int64_t>{3, 2, 5}));
  // Check batch 2 against a manual 2-D matmul.
  Graph g2;
  GraphBuilder b2(&g2);
  Value* a2 = b2.Input("a", DType::kF32, {2, 4});
  Value* w2 = b2.Input("w", DType::kF32, {4, 5});
  b2.Output({b2.MatMul(a2, w2)});
  Tensor slice(DType::kF32, {2, 4});
  for (int i = 0; i < 8; ++i) slice.f32_data()[i] = a.f32_data()[16 + i];
  auto ref = Eval(g2, {slice, w});
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(out[0].f32_data()[20 + i], ref[0].f32_data()[i], 1e-5);
  }
}

TEST(EvalTest, Conv2DIdentityKernel) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 3, 3, 1});
  // 1x1 identity filter.
  Value* w = b.Constant(Tensor::F32({1, 1, 1, 1}, {1.0f}));
  b.Output({b.Conv2D(x, w, {1, 1}, {0, 0})});
  Tensor in = Tensor::F32({1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto out = Eval(g, {in});
  EXPECT_TRUE(Tensor::AllClose(out[0], in));
}

TEST(EvalTest, Conv2DSumKernelWithPadding) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 2, 2, 1});
  Value* w = b.Constant(Tensor::F32({3, 3, 1, 1}, std::vector<float>(9, 1.0f)));
  b.Output({b.Conv2D(x, w, {1, 1}, {1, 1})});
  auto out = Eval(g, {Tensor::F32({1, 2, 2, 1}, {1, 2, 3, 4})});
  // Every output = sum of in-bounds neighbours; center sums all = 10.
  EXPECT_EQ(out[0].dims(), (std::vector<int64_t>{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(out[0].f32_data()[0], 10.0f);
}

TEST(EvalTest, TransposeReshapeRoundTrip) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 3});
  Value* t = b.Transpose(x, {1, 0});
  b.Output({b.Reshape(t, {6})});
  auto out = Eval(g, {Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({6}, {1, 4, 2, 5, 3, 6})));
}

TEST(EvalTest, DynamicReshapeFromShapeOf) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* flat = b.Reshape(x, {-1});
  Value* back = b.ReshapeDynamic(flat, b.ShapeOf(x));
  b.Output({back});
  Tensor in = Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6});
  auto out = Eval(g, {in});
  EXPECT_TRUE(Tensor::AllClose(out[0], in));
}

TEST(EvalTest, BroadcastToExpands) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 3});
  b.Output({b.BroadcastTo(x, {2, 3})});
  auto out = Eval(g, {Tensor::F32({1, 3}, {1, 2, 3})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({2, 3}, {1, 2, 3, 1, 2, 3})));
}

TEST(EvalTest, ConcatAxis1) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2, 2});
  Value* y = b.Input("y", DType::kF32, {2, 1});
  b.Output({b.Concat({x, y}, 1)});
  auto out = Eval(g, {Tensor::F32({2, 2}, {1, 2, 3, 4}),
                      Tensor::F32({2, 1}, {9, 8})});
  EXPECT_TRUE(
      Tensor::AllClose(out[0], Tensor::F32({2, 3}, {1, 2, 9, 3, 4, 8})));
}

TEST(EvalTest, SliceStrided) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {6});
  b.Output({b.Slice(x, {1}, {6}, {2})});
  auto out = Eval(g, {Tensor::F32({6}, {0, 1, 2, 3, 4, 5})});
  EXPECT_TRUE(Tensor::AllClose(out[0], Tensor::F32({3}, {1, 3, 5})));
}

TEST(EvalTest, GatherRows) {
  Graph g;
  GraphBuilder b(&g);
  Value* table = b.Input("t", DType::kF32, {4, 2});
  Value* ids = b.Input("ids", DType::kI64, {3});
  b.Output({b.Gather(table, ids, 0)});
  auto out = Eval(g, {Tensor::F32({4, 2}, {0, 1, 10, 11, 20, 21, 30, 31}),
                      Tensor::I64({3}, {2, 0, 2})});
  EXPECT_TRUE(Tensor::AllClose(
      out[0], Tensor::F32({3, 2}, {20, 21, 0, 1, 20, 21})));
}

TEST(EvalTest, GatherOutOfBoundsFails) {
  Graph g;
  GraphBuilder b(&g);
  Value* table = b.Input("t", DType::kF32, {4, 2});
  Value* ids = b.Input("ids", DType::kI64, {1});
  b.Output({b.Gather(table, ids, 0)});
  auto r = EvaluateGraph(g, {Tensor(DType::kF32, {4, 2}),
                             Tensor::I64({1}, {7})});
  EXPECT_FALSE(r.ok());
}

TEST(EvalTest, PadWithValue) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2});
  b.Output({b.Pad(x, {1}, {2}, -1.0)});
  auto out = Eval(g, {Tensor::F32({2}, {5, 6})});
  EXPECT_TRUE(
      Tensor::AllClose(out[0], Tensor::F32({5}, {-1, 5, 6, -1, -1})));
}

TEST(EvalTest, ShapeOfAndDim) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  b.Output({b.ShapeOf(x), b.Dim(x, 0)});
  auto out = Eval(g, {Tensor(DType::kF32, {5, 8})});
  EXPECT_EQ(out[0].i64_data()[0], 5);
  EXPECT_EQ(out[0].i64_data()[1], 8);
  EXPECT_EQ(out[1].i64_data()[0], 5);
}

TEST(EvalTest, IotaAxis) {
  Graph g;
  GraphBuilder b(&g);
  b.Output({b.Iota({2, 3}, 1)});
  auto out = Eval(g, {});
  EXPECT_EQ(out[0].i64_data()[0], 0);
  EXPECT_EQ(out[0].i64_data()[2], 2);
  EXPECT_EQ(out[0].i64_data()[3], 0);
}

TEST(EvalTest, SoftmaxRowsSumToOne) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  Rng rng(3);
  auto out = Eval(g, {RandomF32(&rng, {5, 7})});
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 7; ++c) sum += out[0].f32_data()[r * 7 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(EvalTest, LayerNormZeroMeanUnitVar) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {3, 16});
  Value* scale = b.Constant(Tensor::F32({16}, std::vector<float>(16, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({16}, std::vector<float>(16, 0.0f)));
  b.Output({b.LayerNorm(x, scale, bias)});
  Rng rng(4);
  auto out = Eval(g, {RandomF32(&rng, {3, 16})});
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 16; ++c) mean += out[0].f32_data()[r * 16 + c];
    mean /= 16;
    for (int64_t c = 0; c < 16; ++c) {
      double d = out[0].f32_data()[r * 16 + c] - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(EvalTest, InputShapeValidation) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  b.Output({b.Relu(x)});
  EXPECT_FALSE(EvaluateGraph(g, {Tensor(DType::kF32, {2, 9})}).ok());
  EXPECT_FALSE(EvaluateGraph(g, {Tensor(DType::kF32, {8})}).ok());
  EXPECT_FALSE(EvaluateGraph(g, {}).ok());
  EXPECT_TRUE(EvaluateGraph(g, {Tensor(DType::kF32, {2, 8})}).ok());
}

}  // namespace
}  // namespace disc
