// Property-based testing: randomized dynamic-shape graphs are compiled and
// executed, and must agree with the reference evaluator —
//   * on two different instantiations of their dynamic dims (the same
//     executable serves both: compile-once, run-any-shape), and
//   * under every ablation configuration (fusion and specialization may
//     change performance, never numerics).
//
// The generator builds DAGs over elementwise, reduction and injective ops,
// tracking a per-dimension symbol ("B"/"S"/"N"/constant) so structural
// attributes (slice bounds, concat, reshape merges) are only applied where
// they stay valid for any symbol binding. Symbols get distinct prime values
// in instance 1, so accidental dim equality cannot fake shape equality.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "ir/parser.h"
#include "shape/shape_analysis.h"
#include "support/rng.h"

namespace disc {
namespace {

struct GenValue {
  Value* value;
  std::vector<std::string> spec;  // symbol name or decimal constant per dim
};

class GraphGenerator {
 public:
  explicit GraphGenerator(uint64_t seed) : rng_(seed) {}

  // Returns dim labels parallel to inputs.
  std::vector<std::vector<std::string>> Build(Graph* graph, int num_ops) {
    GraphBuilder b(graph);
    std::vector<std::vector<std::string>> labels;

    // 1-3 inputs over the symbols B, S and constants.
    int num_inputs = static_cast<int>(rng_.UniformInt(1, 3));
    for (int i = 0; i < num_inputs; ++i) {
      std::vector<std::string> spec;
      int rank = static_cast<int>(rng_.UniformInt(1, 3));
      for (int d = 0; d < rank; ++d) {
        switch (rng_.UniformInt(0, 3)) {
          case 0:
            spec.push_back("B");
            break;
          case 1:
            spec.push_back("S");
            break;
          default:
            spec.push_back(std::to_string(rng_.UniformInt(2, 6)));
        }
      }
      std::vector<int64_t> declared;
      std::vector<std::string> label;
      for (const std::string& s : spec) {
        if (IsConst(s)) {
          declared.push_back(std::stoll(s));
          label.push_back("");
        } else {
          declared.push_back(kDynamicDim);
          label.push_back(s);
        }
      }
      labels.push_back(label);
      Value* v = b.Input("in" + std::to_string(i), DType::kF32, declared);
      pool_.push_back({v, spec});
    }

    for (int i = 0; i < num_ops; ++i) AddRandomOp(&b);

    // Outputs: up to 2 of the most recent values.
    std::vector<Value*> outputs = {pool_.back().value};
    if (pool_.size() >= 2 && rng_.UniformInt(0, 1) == 1) {
      outputs.push_back(pool_[pool_.size() - 2].value);
    }
    b.Output(outputs);
    return labels;
  }

  // Concrete input tensors for a given symbol assignment.
  std::vector<Tensor> MakeInputs(const Graph& graph,
                                 const std::map<std::string, int64_t>& syms,
                                 uint64_t seed) {
    Rng data_rng(seed);
    std::vector<Tensor> inputs;
    for (size_t i = 0; i < graph.inputs().size(); ++i) {
      const auto& spec = pool_[i].spec;
      std::vector<int64_t> dims;
      for (const std::string& s : spec) {
        dims.push_back(IsConst(s) ? std::stoll(s) : syms.at(s));
      }
      Tensor t(DType::kF32, dims);
      for (int64_t e = 0; e < t.num_elements(); ++e) {
        t.f32_data()[e] = data_rng.Normal();
      }
      inputs.push_back(std::move(t));
    }
    return inputs;
  }

 private:
  static bool IsConst(const std::string& s) {
    return !s.empty() && std::isdigit(static_cast<unsigned char>(s[0]));
  }

  GenValue& Pick() {
    return pool_[rng_.UniformInt(0, static_cast<int64_t>(pool_.size()) - 1)];
  }

  void AddRandomOp(GraphBuilder* b) {
    switch (rng_.UniformInt(0, 11)) {
      case 0: {  // unary
        GenValue& x = Pick();
        static const OpKind kUnary[] = {OpKind::kAbs, OpKind::kNeg,
                                        OpKind::kTanh, OpKind::kSigmoid,
                                        OpKind::kRelu, OpKind::kExp};
        OpKind kind = kUnary[rng_.UniformInt(0, 5)];
        pool_.push_back({b->Unary(kind, x.value), x.spec});
        break;
      }
      case 1: {  // binary with an identical-spec partner, if any
        GenValue& x = Pick();
        std::vector<GenValue*> same;
        for (GenValue& other : pool_) {
          if (other.spec == x.spec) same.push_back(&other);
        }
        GenValue& y = *same[rng_.UniformInt(
            0, static_cast<int64_t>(same.size()) - 1)];
        static const OpKind kBinary[] = {OpKind::kAdd, OpKind::kSub,
                                         OpKind::kMul, OpKind::kMaximum,
                                         OpKind::kMinimum};
        OpKind kind = kBinary[rng_.UniformInt(0, 4)];
        pool_.push_back({b->Binary(kind, x.value, y.value), x.spec});
        break;
      }
      case 2: {  // binary with scalar
        GenValue& x = Pick();
        Value* c = b->ScalarF32(static_cast<float>(rng_.Uniform(-2, 2)));
        pool_.push_back({b->Add(x.value, c), x.spec});
        break;
      }
      case 3: {  // reduce over a random axis
        GenValue& x = Pick();
        if (x.spec.empty()) break;
        int64_t axis =
            rng_.UniformInt(0, static_cast<int64_t>(x.spec.size()) - 1);
        bool keep = rng_.UniformInt(0, 1) == 1;
        static const OpKind kReduce[] = {OpKind::kReduceSum,
                                         OpKind::kReduceMax,
                                         OpKind::kReduceMean};
        OpKind kind = kReduce[rng_.UniformInt(0, 2)];
        std::vector<std::string> spec;
        for (size_t d = 0; d < x.spec.size(); ++d) {
          if (static_cast<int64_t>(d) == axis) {
            if (keep) spec.push_back("1");
          } else {
            spec.push_back(x.spec[d]);
          }
        }
        pool_.push_back({b->Reduce(kind, x.value, {axis}, keep), spec});
        break;
      }
      case 4: {  // transpose with a random permutation
        GenValue& x = Pick();
        if (x.spec.size() < 2) break;
        std::vector<int64_t> perm(x.spec.size());
        for (size_t d = 0; d < perm.size(); ++d) {
          perm[d] = static_cast<int64_t>(d);
        }
        std::shuffle(perm.begin(), perm.end(), rng_.engine());
        std::vector<std::string> spec(x.spec.size());
        for (size_t d = 0; d < perm.size(); ++d) spec[d] = x.spec[perm[d]];
        pool_.push_back({b->Transpose(x.value, perm), spec});
        break;
      }
      case 5: {  // flatten everything to 1-D via dynamic reshape
        GenValue& x = Pick();
        if (x.spec.size() < 2) break;
        Value* flat = b->Reshape(x.value, {-1});
        std::string merged;
        for (const std::string& s : x.spec) merged += s + "*";
        pool_.push_back({flat, {merged}});
        break;
      }
      case 6: {  // reshape back to a producer's shape via shape_of
        GenValue& x = Pick();
        // Find a value with the same element count: itself (round trip).
        Value* flat = b->Reshape(x.value, {-1});
        Value* back = b->ReshapeDynamic(flat, b->ShapeOf(x.value));
        pool_.push_back({back, x.spec});
        break;
      }
      case 7: {  // slice a static axis in half
        GenValue& x = Pick();
        int static_axis = -1;
        for (size_t d = 0; d < x.spec.size(); ++d) {
          if (IsConst(x.spec[d]) && std::stoll(x.spec[d]) >= 2) {
            static_axis = static_cast<int>(d);
          }
        }
        if (static_axis < 0) break;
        int64_t extent = std::stoll(x.spec[static_axis]);
        std::vector<int64_t> starts(x.spec.size(), 0);
        std::vector<int64_t> ends(x.spec.size(), -1);
        std::vector<int64_t> steps(x.spec.size(), 1);
        ends[static_axis] = extent / 2;
        std::vector<std::string> spec = x.spec;
        spec[static_axis] = std::to_string(extent / 2);
        pool_.push_back({b->Slice(x.value, starts, ends, steps), spec});
        break;
      }
      case 8: {  // pad a static axis
        GenValue& x = Pick();
        int static_axis = -1;
        for (size_t d = 0; d < x.spec.size(); ++d) {
          if (IsConst(x.spec[d])) static_axis = static_cast<int>(d);
        }
        if (static_axis < 0) break;
        std::vector<int64_t> low(x.spec.size(), 0);
        std::vector<int64_t> high(x.spec.size(), 0);
        low[static_axis] = 1;
        high[static_axis] = 1;
        std::vector<std::string> spec = x.spec;
        spec[static_axis] =
            std::to_string(std::stoll(x.spec[static_axis]) + 2);
        pool_.push_back({b->Pad(x.value, low, high, 0.5), spec});
        break;
      }
      case 10: {  // gather rows by a constant index tensor on a static axis
        GenValue& x = Pick();
        if (x.spec.empty() || !IsConst(x.spec[0])) break;
        int64_t extent = std::stoll(x.spec[0]);
        int64_t n = rng_.UniformInt(1, 4);
        std::vector<int64_t> ids;
        for (int64_t i = 0; i < n; ++i) ids.push_back(rng_.UniformInt(0, extent - 1));
        Value* idx = b->Constant(Tensor::I64({n}, ids));
        std::vector<std::string> spec = x.spec;
        spec[0] = std::to_string(n);
        pool_.push_back({b->Gather(x.value, idx, 0), spec});
        break;
      }
      case 11: {  // broadcast a scalar to a value's (dynamic) shape
        GenValue& x = Pick();
        if (x.spec.empty()) break;
        Value* scalar = b->ScalarF32(static_cast<float>(rng_.Uniform(-1, 1)));
        Value* bc = b->BroadcastToDynamic(scalar, b->ShapeOf(x.value));
        pool_.push_back({b->Add(x.value, bc), x.spec});
        break;
      }
      case 9: {  // concat a value with itself along a static axis
        GenValue& x = Pick();
        int static_axis = -1;
        for (size_t d = 0; d < x.spec.size(); ++d) {
          if (IsConst(x.spec[d])) static_axis = static_cast<int>(d);
        }
        if (static_axis < 0) break;
        std::vector<std::string> spec = x.spec;
        spec[static_axis] =
            std::to_string(2 * std::stoll(x.spec[static_axis]));
        pool_.push_back(
            {b->Concat({x.value, x.value}, static_axis), spec});
        break;
      }
    }
  }

  Rng rng_;
  std::vector<GenValue> pool_;
};

class PropertyCompileTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyCompileTest, CompiledMatchesReferenceOnTwoInstantiations) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Graph graph("prop_" + std::to_string(seed));
  GraphGenerator generator(seed);
  auto labels = generator.Build(&graph, /*num_ops=*/14);
  ASSERT_TRUE(graph.Verify().ok()) << graph.ToString();

  auto exe = DiscCompiler::Compile(graph, labels);
  ASSERT_TRUE(exe.ok()) << exe.status().ToString() << "\n" << graph.ToString();

  // Two instantiations of the dynamic dims, served by ONE executable.
  for (const auto& syms : std::vector<std::map<std::string, int64_t>>{
           {{"B", 3}, {"S", 5}}, {{"B", 6}, {"S", 9}}}) {
    auto inputs = generator.MakeInputs(graph, syms, seed * 31 + syms.at("B"));
    auto want = EvaluateGraph(graph, inputs);
    ASSERT_TRUE(want.ok()) << want.status().ToString() << "\n"
                           << graph.ToString();
    auto got = (*exe)->Run(inputs);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n"
                          << graph.ToString();
    ASSERT_EQ(got->outputs.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i], 1e-3, 1e-4))
          << "seed " << seed << " output " << i << "\n"
          << graph.ToString();
    }
  }
}

TEST_P(PropertyCompileTest, AblationsNeverChangeNumerics) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Graph graph("abl_" + std::to_string(seed));
  GraphGenerator generator(seed + 1000);
  auto labels = generator.Build(&graph, /*num_ops=*/10);

  auto inputs = generator.MakeInputs(graph, {{"B", 4}, {"S", 7}}, seed);
  auto want = EvaluateGraph(graph, inputs);
  ASSERT_TRUE(want.ok());

  for (const CompileOptions& options :
       {CompileOptions::Default(), CompileOptions::NoFusion(),
        CompileOptions::NoSpecialization(),
        CompileOptions::NoSymbolicShapes()}) {
    auto exe = DiscCompiler::Compile(graph, labels, options);
    ASSERT_TRUE(exe.ok()) << exe.status().ToString();
    auto got = (*exe)->Run(inputs);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i], 1e-3, 1e-4))
          << "seed " << seed << "\n" << graph.ToString();
    }
  }
}

TEST_P(PropertyCompileTest, SymbolicShapesAgreeWithConcreteEvaluation) {
  // For every value in a random graph, the symbolic shape evaluated under
  // the solved bindings must equal the dims the reference evaluator
  // actually produces.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Graph graph("shapes_" + std::to_string(seed));
  GraphGenerator generator(seed + 2000);
  auto labels = generator.Build(&graph, /*num_ops=*/12);

  ShapeAnalysis analysis(&graph, labels);
  ASSERT_TRUE(analysis.Run().ok()) << graph.ToString();

  std::map<std::string, int64_t> syms = {{"B", 4}, {"S", 7}};
  auto inputs = generator.MakeInputs(graph, syms, seed);
  std::vector<std::vector<int64_t>> input_dims;
  for (const Tensor& t : inputs) input_dims.push_back(t.dims());
  auto bindings = analysis.BindInputs(input_dims);
  ASSERT_TRUE(bindings.ok()) << bindings.status().ToString();

  // Concrete per-value dims via node-by-node reference evaluation.
  std::unordered_map<const Value*, Tensor> env;
  for (size_t i = 0; i < inputs.size(); ++i) {
    env.emplace(graph.inputs()[i], inputs[i]);
  }
  for (const Node* node : graph.TopologicalOrder()) {
    std::vector<Tensor> operand_values;
    for (const Value* operand : node->operands()) {
      operand_values.push_back(env.at(operand));
    }
    auto results = EvaluateNode(*node, operand_values);
    ASSERT_TRUE(results.ok()) << node->ToString();
    for (size_t i = 0; i < results->size(); ++i) {
      const Value* out = node->output(static_cast<int>(i));
      auto symbolic_dims = analysis.EvaluateShape(out, *bindings);
      ASSERT_TRUE(symbolic_dims.ok())
          << node->ToString() << ": " << symbolic_dims.status().ToString();
      EXPECT_EQ(*symbolic_dims, (*results)[i].dims())
          << "seed " << seed << " node " << node->ToString() << "\n"
          << SymShapeToString(analysis.GetShape(out));
      env.emplace(out, std::move((*results)[i]));
    }
  }
}

TEST_P(PropertyCompileTest, PrinterParserRoundTripOnRandomGraphs) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Graph graph("rt_" + std::to_string(seed));
  GraphGenerator generator(seed + 3000);
  generator.Build(&graph, /*num_ops=*/10);

  auto parsed = ParseGraph(graph.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << graph.ToString();
  EXPECT_EQ((*parsed)->num_nodes(), graph.num_nodes());
  // Round-tripping again is a fixpoint.
  auto twice = ParseGraph((*parsed)->ToString());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ((*twice)->ToString(), (*parsed)->ToString());
  // And the parsed graph computes the same function.
  auto inputs = generator.MakeInputs(graph, {{"B", 3}, {"S", 5}}, seed);
  auto want = EvaluateGraph(graph, inputs);
  auto got = EvaluateGraph(**parsed, inputs);
  ASSERT_TRUE(want.ok() && got.ok());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose((*got)[i], (*want)[i])) << graph.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyCompileTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace disc
