#include "models/models.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "compiler/compiler.h"
#include "ir/eval.h"

namespace disc {
namespace {

class ModelSuiteTest : public ::testing::TestWithParam<std::string> {
 protected:
  Model GetModel() {
    ModelConfig config;
    config.trace_length = 8;
    for (Model& model : BuildModelSuite(config)) {
      if (model.name == GetParam()) return std::move(model);
    }
    ADD_FAILURE() << "model not found: " << GetParam();
    return {};
  }
};

TEST_P(ModelSuiteTest, GraphVerifies) {
  Model model = GetModel();
  ASSERT_NE(model.graph, nullptr);
  EXPECT_TRUE(model.graph->Verify().ok());
  EXPECT_GT(model.graph->num_nodes(), 0);
}

TEST_P(ModelSuiteTest, CompiledOutputMatchesReference) {
  Model model = GetModel();
  std::vector<Tensor> inputs = model.make_inputs(model.small_shapes, 42);
  auto want = EvaluateGraph(*model.graph, inputs);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  auto got = (*exe)->Run(inputs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->outputs.size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i], 1e-3, 1e-4))
        << model.name << " output " << i;
  }
}

TEST_P(ModelSuiteTest, FusionActuallyHappens) {
  Model model = GetModel();
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  const auto& stats = (*exe)->report().fusion;
  EXPECT_GT(stats.num_fused_nodes, 0) << model.name;
  // Every model has at least one softmax or layernorm -> stitch fusion.
  if (model.name != "dlrm") {
    EXPECT_GT(stats.num_stitch_groups, 0) << model.name;
  }
}

TEST_P(ModelSuiteTest, AblationsAgreeOnModelNumerics) {
  Model model = GetModel();
  std::vector<Tensor> inputs = model.make_inputs(model.small_shapes, 77);
  auto want = EvaluateGraph(*model.graph, inputs);
  ASSERT_TRUE(want.ok());
  for (const CompileOptions& options :
       {CompileOptions::NoFusion(), CompileOptions::NoSpecialization(),
        CompileOptions::NoSymbolicShapes()}) {
    auto exe =
        DiscCompiler::Compile(*model.graph, model.input_dim_labels, options);
    ASSERT_TRUE(exe.ok()) << model.name;
    auto got = (*exe)->Run(inputs);
    ASSERT_TRUE(got.ok()) << model.name << ": " << got.status().ToString();
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i], 1e-3, 1e-4))
          << model.name;
    }
  }
}

TEST_P(ModelSuiteTest, TraceShapesAllExecutable) {
  Model model = GetModel();
  ASSERT_FALSE(model.trace.empty());
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  for (const ShapeSet& shapes : model.trace) {
    auto r = (*exe)->RunWithShapes(shapes);
    ASSERT_TRUE(r.ok()) << model.name << ": " << r.status().ToString();
    EXPECT_GT(r->profile.device_time_us, 0.0);
  }
}

TEST_P(ModelSuiteTest, EveryEngineHandlesTheTrace) {
  Model model = GetModel();
  for (const std::string& name : AllBaselineNames()) {
    if (name == "TVM") continue;  // per-shape tuning stall; covered below
    auto engine = MakeBaseline(name);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(*model.graph, model.input_dim_labels).ok())
        << name << " on " << model.name;
    for (size_t q = 0; q < 3 && q < model.trace.size(); ++q) {
      auto timing = (*engine)->Query(model.trace[q], DeviceSpec::T4());
      ASSERT_TRUE(timing.ok())
          << name << " on " << model.name << ": "
          << timing.status().ToString();
      EXPECT_GT(timing->total_us, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSuiteTest,
                         ::testing::Values("bert", "seq2seq-step", "crnn",
                                           "fastspeech2", "dlrm", "mlp"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class ExtraModelTest : public ::testing::TestWithParam<std::string> {
 protected:
  Model GetModel() {
    ModelConfig config;
    config.trace_length = 6;
    if (GetParam() == "bert-masked") return BuildBertWithMask(config);
    return BuildGptStep(config);
  }
};

TEST_P(ExtraModelTest, CompiledOutputMatchesReference) {
  Model model = GetModel();
  ASSERT_TRUE(model.graph->Verify().ok());
  std::vector<Tensor> inputs = model.make_inputs(model.small_shapes, 11);
  auto want = EvaluateGraph(*model.graph, inputs);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  auto got = (*exe)->Run(inputs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->outputs.size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i], 1e-3, 1e-4))
        << model.name << " output " << i;
  }
}

TEST_P(ExtraModelTest, TraceShapesAllExecutable) {
  Model model = GetModel();
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  for (const ShapeSet& shapes : model.trace) {
    ASSERT_TRUE((*exe)->RunWithShapes(shapes).ok()) << model.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtraModelTest,
                         ::testing::Values("bert-masked", "gpt-step"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ExtraModelTest2, MaskActuallyMasks) {
  // Fully-masked tail positions must not influence attended outputs:
  // changing embedding values at masked positions must not change row 0.
  ModelConfig config;
  Model model = BuildBertWithMask(config);
  std::vector<Tensor> inputs = model.make_inputs({{1, 4, config.hidden},
                                                  {1, 4}},
                                                 3);
  // Force mask = [1, 1, 0, 0].
  inputs[1] = Tensor::F32({1, 4}, {1, 1, 0, 0});
  auto r1 = EvaluateGraph(*model.graph, inputs);
  ASSERT_TRUE(r1.ok());
  // Perturb the masked positions' embeddings.
  for (int64_t c = 2 * config.hidden; c < 4 * config.hidden; ++c) {
    inputs[0].f32_data()[c] += 7.0f;
  }
  auto r2 = EvaluateGraph(*model.graph, inputs);
  ASSERT_TRUE(r2.ok());
  // Attention outputs at position 0 are unchanged up to the residual path
  // (which does not read positions 2/3 at position 0 at all).
  for (int64_t c = 0; c < config.hidden; ++c) {
    EXPECT_NEAR((*r1)[0].f32_data()[c], (*r2)[0].f32_data()[c], 1e-4);
  }
}

TEST(ExtraModelTest2, GptStepGrowsCacheSymbolically) {
  ModelConfig config;
  Model model = BuildGptStep(config);
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  // The grown cache output has symbolic dim T+1.
  const SymShape& k_next_shape =
      (*exe)->analysis().GetShape((*exe)->graph().outputs()[1]);
  EXPECT_NE(k_next_shape[1].ToString().find("+"), std::string::npos)
      << k_next_shape[1].ToString();

  // Drive a real decode loop: feed outputs back as the next cache.
  std::vector<Tensor> inputs = model.make_inputs(model.small_shapes, 5);
  for (int step = 0; step < 4; ++step) {
    auto r = (*exe)->Run(inputs);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->outputs[1].dims()[1], inputs[1].dims()[1] + 1);
    inputs[1] = r->outputs[1];
    inputs[2] = r->outputs[2];
  }
  EXPECT_EQ(inputs[1].dims()[1], 7);  // 3 + 4 steps
}

TEST(ModelSuiteTest2, SuiteHasSixModelsWithTraces) {
  ModelConfig config;
  config.trace_length = 5;
  auto suite = BuildModelSuite(config);
  ASSERT_EQ(suite.size(), 6u);
  for (const Model& model : suite) {
    EXPECT_EQ(model.trace.size(), 5u) << model.name;
    EXPECT_FALSE(model.input_dim_labels.empty()) << model.name;
  }
}

TEST(ModelSuiteTest2, TracesAreDeterministic) {
  ModelConfig config;
  config.trace_length = 6;
  auto a = BuildBert(config);
  auto b = BuildBert(config);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]);
  }
}

TEST(ModelSuiteTest2, TracesAreActuallyDynamic) {
  ModelConfig config;
  config.trace_length = 32;
  for (const Model& model : BuildModelSuite(config)) {
    std::set<ShapeSet> distinct(model.trace.begin(), model.trace.end());
    EXPECT_GT(distinct.size(), 4u) << model.name << " trace is too static";
  }
}

}  // namespace
}  // namespace disc
