#include "runtime/memory_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "models/models.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace disc {
namespace {

DimExpr C(int64_t v) { return DimExpr::Const(v); }
DimExpr S(SymbolId id) { return DimExpr::Symbol(id); }

int64_t Eval(const DimExpr& e,
             const std::unordered_map<SymbolId, int64_t>& bindings) {
  Result<int64_t> v = e.Evaluate(bindings);
  EXPECT_TRUE(v.ok()) << e.ToString() << ": " << v.status().ToString();
  return v.ok() ? *v : -1;
}

int64_t AlignUp(int64_t bytes) {
  return CeilDiv(bytes, kArenaAlignment) * kArenaAlignment;
}

TEST(MemoryPlanTest, EmptyScheduleYieldsEmptyLayout) {
  SymbolicDimManager m;
  ArenaLayout layout = PlanArenaItems({}, m);
  EXPECT_TRUE(layout.slots.empty());
  EXPECT_TRUE(layout.peak_bytes.IsConstValue(0));
  EXPECT_EQ(layout.num_reused, 0);
}

TEST(MemoryPlanTest, ExactSizeChainPingPongs) {
  // Ten same-sized values in a chain (each dies when the next is defined):
  // the arena collapses them into ~2 slots, like PlanBuffers.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  std::vector<ArenaItem> items;
  for (int i = 0; i < 10; ++i) {
    items.push_back({DimExpr::Mul(S(b), C(256)), i, i + 1, false, i});
  }
  items.back().last_use_step = 9;
  ArenaLayout layout = PlanArenaItems(items, m);
  EXPECT_LE(layout.slots.size(), 3u);
  EXPECT_GE(layout.num_reused, 7);
  EXPECT_EQ(layout.num_cross_size_reuses, 0);
  EXPECT_TRUE(layout.fallbacks.empty());
}

TEST(MemoryPlanTest, SmallerValueFitsInFreeSlot) {
  // 512*B slot frees, then a 256*B value arrives: provably fits (fit
  // reuse), slot keeps its larger size.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  DimExpr big = DimExpr::Mul(S(b), C(512));
  DimExpr small = DimExpr::Mul(S(b), C(256));
  std::vector<ArenaItem> items = {
      {big, 0, 1, false, 0},
      {small, 2, 3, false, 1},
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  ASSERT_EQ(layout.slots.size(), 1u);
  EXPECT_EQ(layout.slot_of[0], layout.slot_of[1]);
  EXPECT_EQ(layout.num_cross_size_reuses, 1);
  EXPECT_TRUE(layout.slots[0].bytes.Equals(big));
}

TEST(MemoryPlanTest, LargerValueWidensFreeSlot) {
  // Reverse order: the 256*B slot is provably covered by the incoming
  // 512*B value, so the slot widens instead of opening a second slot.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  DimExpr big = DimExpr::Mul(S(b), C(512));
  DimExpr small = DimExpr::Mul(S(b), C(256));
  std::vector<ArenaItem> items = {
      {small, 0, 1, false, 0},
      {big, 2, 3, false, 1},
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  ASSERT_EQ(layout.slots.size(), 1u);
  EXPECT_EQ(layout.num_cross_size_reuses, 1);
  EXPECT_TRUE(layout.slots[0].bytes.Equals(big));
  EXPECT_TRUE(layout.peak_bytes.Equals(big));
}

TEST(MemoryPlanTest, IncomparableSizesFallBackToFreshSlot) {
  // 256*B vs 256*S with no relating facts: neither provably fits the
  // other, so the second value gets its own slot and a fallback record.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  SymbolId s = m.NewSymbol("S");
  std::vector<ArenaItem> items = {
      {DimExpr::Mul(S(b), C(256)), 0, 1, false, 7},
      {DimExpr::Mul(S(s), C(256)), 2, 3, false, 8},
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  EXPECT_EQ(layout.slots.size(), 2u);
  ASSERT_EQ(layout.fallbacks.size(), 1u);
  EXPECT_EQ(layout.fallbacks[0].value_id, 8);
  EXPECT_NE(layout.fallbacks[0].reason.find("incomparable"),
            std::string::npos);
}

TEST(MemoryPlanTest, BoundFactsMakeSizesComparable) {
  // Same sizes as above, but with range facts B <= 8 <= S the planner can
  // discharge 256*B <= 256*S and reuse the slot.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  SymbolId s = m.NewSymbol("S");
  ASSERT_TRUE(m.SetRange(b, 1, 8).ok());
  ASSERT_TRUE(m.SetRange(s, 8, 1024).ok());
  std::vector<ArenaItem> items = {
      {DimExpr::Mul(S(s), C(256)), 0, 1, false, 0},
      {DimExpr::Mul(S(b), C(256)), 2, 3, false, 1},
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  EXPECT_EQ(layout.slots.size(), 1u);
  EXPECT_EQ(layout.num_cross_size_reuses, 1);
  EXPECT_TRUE(layout.fallbacks.empty());
}

TEST(MemoryPlanTest, PinnedItemsNeverShare) {
  // A pinned item (graph output / constant) keeps its slot exclusively,
  // even after its last use.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  DimExpr bytes = DimExpr::Mul(S(b), C(256));
  std::vector<ArenaItem> items = {
      {bytes, 0, 1, true, 0},   // pinned, "dead" after step 1
      {bytes, 2, 3, false, 1},  // same size, disjoint lifetime
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  EXPECT_EQ(layout.slots.size(), 2u);
  EXPECT_NE(layout.slot_of[0], layout.slot_of[1]);
  EXPECT_EQ(layout.num_reused, 0);
}

TEST(MemoryPlanTest, OverlappingLifetimesNeverShare) {
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  DimExpr bytes = DimExpr::Mul(S(b), C(256));
  std::vector<ArenaItem> items = {
      {bytes, 0, 2, false, 0},
      {bytes, 1, 3, false, 1},  // overlaps step 1-2
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  EXPECT_NE(layout.slot_of[0], layout.slot_of[1]);
}

TEST(MemoryPlanTest, OffsetsAlignedForEveryBinding) {
  // Slot sizes include a non-divisible expression (B*4 bytes): the aligned
  // slot size must keep offsets at the alignment quantum for any B.
  SymbolicDimManager m;
  SymbolId b = m.NewSymbol("B");
  std::vector<ArenaItem> items = {
      {DimExpr::Mul(S(b), C(4)), 0, 2, false, 0},  // not 256-divisible
      {DimExpr::Mul(S(b), C(1024)), 1, 2, false, 1},
  };
  ArenaLayout layout = PlanArenaItems(items, m);
  for (int64_t value : {1, 3, 17, 63, 128}) {
    std::unordered_map<SymbolId, int64_t> bindings = {{b, value}};
    for (const ArenaSlot& slot : layout.slots) {
      EXPECT_EQ(Eval(slot.bytes, bindings) % kArenaAlignment, 0);
      EXPECT_EQ(Eval(slot.offset, bindings) % kArenaAlignment, 0);
    }
  }
}

// The core soundness property, fuzzed: for random schedules, random size
// expressions and random concrete shape bindings,
//   (a) two simultaneously-live items never overlap in the arena,
//   (b) every item fits inside its slot,
//   (c) the evaluated peak formula covers the simulated high-water mark
//       of live bytes at every step.
TEST(MemoryPlanTest, PropertyRandomSchedulesAreSound) {
  Rng rng(0xa12e7a);
  for (int trial = 0; trial < 40; ++trial) {
    SymbolicDimManager m;
    SymbolId b = m.NewSymbol("B");
    SymbolId s = m.NewSymbol("S");
    ASSERT_TRUE(m.SetRange(b, 1, 64).ok());
    ASSERT_TRUE(m.SetRange(s, 1, 512).ok());
    // A pool mixing constants, comparable and incomparable symbolic sizes,
    // including ceildiv shapes like the attention-mask slot in bert.
    const std::vector<DimExpr> pool = {
        C(1024),
        C(4096),
        DimExpr::Mul(S(b), C(4)),
        DimExpr::Mul(S(b), C(256)),
        DimExpr::Mul(S(b), C(512)),
        DimExpr::Mul(S(s), C(128)),
        DimExpr::Mul(DimExpr::Mul(S(b), S(s)), C(4)),
        DimExpr::Mul(DimExpr::CeilDiv(DimExpr::Mul(S(b), S(s)), C(64)),
                     C(256)),
    };
    const int n = static_cast<int>(rng.UniformInt(2, 24));
    const int num_steps = static_cast<int>(rng.UniformInt(1, 30));
    std::vector<ArenaItem> items;
    for (int i = 0; i < n; ++i) {
      ArenaItem item;
      item.bytes = pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
      item.def_step = static_cast<int>(rng.UniformInt(0, num_steps - 1));
      item.last_use_step = static_cast<int>(
          rng.UniformInt(item.def_step, num_steps - 1));
      item.pinned = rng.UniformInt(0, 9) == 0;
      item.value_id = i;
      items.push_back(item);
    }
    ArenaLayout layout = PlanArenaItems(items, m);
    ASSERT_EQ(layout.slot_of.size(), items.size());

    for (int rep = 0; rep < 4; ++rep) {
      std::unordered_map<SymbolId, int64_t> bindings = {
          {b, rng.UniformInt(1, 64)}, {s, rng.UniformInt(1, 512)}};
      const int64_t peak = Eval(layout.peak_bytes, bindings);

      struct Placed {
        int64_t lo, hi;  // [lo, hi) byte range
        int def, last;
      };
      std::vector<Placed> placed;
      for (size_t i = 0; i < items.size(); ++i) {
        const ArenaSlot& slot = layout.slots[layout.slot_of[i]];
        const int64_t offset = Eval(slot.offset, bindings);
        const int64_t slot_bytes = Eval(slot.bytes, bindings);
        const int64_t item_bytes =
            AlignUp(Eval(items[i].bytes, bindings));
        // (b) the item fits inside its slot, and the slot inside the arena.
        EXPECT_LE(item_bytes, slot_bytes)
            << "trial " << trial << " item " << i << " overflows its slot";
        EXPECT_LE(offset + slot_bytes, peak);
        placed.push_back({offset, offset + item_bytes, items[i].def_step,
                          items[i].last_use_step});
      }
      // (a) simultaneously-live items occupy disjoint ranges. Pinned items
      // are live forever.
      for (size_t i = 0; i < placed.size(); ++i) {
        for (size_t j = i + 1; j < placed.size(); ++j) {
          const int last_i = items[i].pinned ? num_steps : placed[i].last;
          const int last_j = items[j].pinned ? num_steps : placed[j].last;
          const bool live_overlap =
              placed[i].def <= last_j && placed[j].def <= last_i;
          const bool byte_overlap =
              placed[i].lo < placed[j].hi && placed[j].lo < placed[i].hi;
          if (live_overlap) {
            EXPECT_FALSE(byte_overlap)
                << "trial " << trial << ": items " << i << " and " << j
                << " live together at overlapping offsets";
          }
        }
      }
      // (c) the peak formula covers the per-step high-water mark.
      for (int step = 0; step < num_steps; ++step) {
        int64_t live_bytes = 0;
        for (size_t i = 0; i < placed.size(); ++i) {
          const int last = items[i].pinned ? num_steps : placed[i].last;
          if (placed[i].def <= step && step <= last) {
            live_bytes += placed[i].hi - placed[i].lo;
          }
        }
        EXPECT_GE(peak, live_bytes)
            << "trial " << trial << " step " << step
            << ": peak formula below simulated live bytes";
      }
    }
  }
}

TEST(MemoryPlanTest, CompiledModelCarriesPlan) {
  ModelConfig config;
  Model bert = BuildBert(config);
  auto exe = DiscCompiler::Compile(*bert.graph, bert.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  const MemoryPlan& plan = (*exe)->memory_plan();
  ASSERT_TRUE(plan.planned);
  EXPECT_GT(plan.num_values, 0);
  EXPECT_GT(plan.num_slots(), 0);
  EXPECT_LT(plan.num_slots(), plan.num_values)
      << "no arena reuse in a transformer graph";
  EXPECT_GT(plan.num_reused, 0);
  EXPECT_TRUE(plan.peak_bytes.valid());
  EXPECT_NE(plan.ToString().find("MemoryPlan{"), std::string::npos);
  const std::string json = plan.ToJson();
  EXPECT_NE(json.find("\"arena\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_bytes\""), std::string::npos);
}

TEST(MemoryPlanTest, ArenaPeakNotWorseThanPerSlotSum) {
  // The arena's symbolic peak must never exceed the per-slot plan's total
  // (it reuses at least as aggressively), checked on concrete bindings.
  ModelConfig config;
  Model bert = BuildBert(config);
  auto exe = DiscCompiler::Compile(*bert.graph, bert.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  const MemoryPlan& plan = (*exe)->memory_plan();
  ASSERT_TRUE(plan.planned);
  for (const auto& [batch, seq] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 32}, {4, 128}, {8, 64}}) {
    auto bindings = (*exe)->analysis().BindInputs({{batch, seq, 64}});
    ASSERT_TRUE(bindings.ok());
    auto arena = (*exe)->analysis().EvaluateDim(plan.peak_bytes, *bindings);
    ASSERT_TRUE(arena.ok());
    int64_t per_slot_sum = 0;
    for (const DimExpr& bytes : (*exe)->buffer_plan().slot_bytes) {
      auto v = (*exe)->analysis().EvaluateDim(bytes, *bindings);
      ASSERT_TRUE(v.ok());
      per_slot_sum += AlignUp(*v);
    }
    // The arena additionally holds constants (pinned residents); allow for
    // that fixed overhead when comparing.
    int64_t constant_bytes = 0;
    for (const auto& [value, slot] : plan.slot_of) {
      if (value->producer() != nullptr &&
          value->producer()->kind() == OpKind::kConstant) {
        auto v = (*exe)->analysis().EvaluateDim(plan.slots[slot].bytes,
                                                *bindings);
        ASSERT_TRUE(v.ok());
        constant_bytes += *v;
      }
    }
    EXPECT_LE(*arena - constant_bytes, per_slot_sum)
        << "batch=" << batch << " seq=" << seq;
  }
}

}  // namespace
}  // namespace disc
