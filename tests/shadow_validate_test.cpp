// The differential admission gate: probe-set assembly, differential
// replay verdicts (miscompile divergence, guard violation, bitrot),
// versioned rollback in the slot and the engine, and the persistent
// miscompile quarantine — a caught artifact must never serve a wrong
// result, not in this process and not after a warm restart.
#include "compile_service/shadow_validate.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "baselines/async_engine.h"
#include "baselines/interpreter_engine.h"
#include "compile_service/compile_service.h"
#include "compile_service/hot_swap.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "runtime/launch_plan.h"
#include "support/failpoint.h"
#include "support/json.h"
#include "support/rng.h"

namespace disc {
namespace {

namespace fs = std::filesystem;

class CacheDir {
 public:
  explicit CacheDir(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("disc_shadow_validate_" + name + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~CacheDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<Graph> EwModel(const std::string& name = "gate") {
  auto g = std::make_unique<Graph>(name);
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(x, x))});
  return g;
}

const std::vector<std::vector<std::string>> kLabels = {{"B", "S"}};

Tensor DeterministicInput(int64_t rows, int64_t cols) {
  std::vector<float> values;
  values.reserve(rows * cols);
  for (int64_t i = 0; i < rows * cols; ++i) {
    values.push_back(static_cast<float>((i * 37) % 101) / 50.0f - 1.0f);
  }
  return Tensor::F32({rows, cols}, values);
}

class ShadowValidateTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Probe-set assembly.

TEST_F(ShadowValidateTest, BuildProbesDrawsFromEverySource) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {8}}, {"S", {128}}};
  auto exe = DiscCompiler::Compile(*g, kLabels, options);
  ASSERT_TRUE(exe.ok());

  ShadowValidateOptions vopts;
  vopts.max_probes = 32;
  ShadowValidator validator(vopts);
  std::vector<ProbeBinding> probes = validator.BuildProbes(
      **exe, kLabels, {{{4, 16}}, {{2, 32}}}, {{"B", {4, 2}}, {"S", {64}}},
      {"6x48;", "not a signature"});

  std::set<std::string> sources;
  std::set<std::string> signatures;
  for (const ProbeBinding& probe : probes) {
    sources.insert(probe.source);
    // Deduplicated by signature.
    EXPECT_TRUE(signatures.insert(ShapeSignature(probe.input_dims)).second);
  }
  EXPECT_TRUE(sources.count("observed")) << probes.size();
  EXPECT_TRUE(sources.count("profile"));
  EXPECT_TRUE(sources.count("outlier"));
  // The hinted compile has guarded variants, so boundary probes exist.
  EXPECT_TRUE(sources.count("boundary"));
  EXPECT_LE(probes.size(), 32u);

  // Most recent observed binding comes first.
  ASSERT_FALSE(probes.empty());
  EXPECT_EQ(probes[0].source, "observed");
  EXPECT_EQ(ShapeSignature(probes[0].input_dims), ShapeSignature({{2, 32}}));
}

TEST_F(ShadowValidateTest, BuildProbesCapReservesBoundaryShare) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {8}}, {"S", {128}}};
  auto exe = DiscCompiler::Compile(*g, kLabels, options);
  ASSERT_TRUE(exe.ok());

  // A long observed history would crowd out boundary probes without the
  // reserved quota.
  std::vector<std::vector<std::vector<int64_t>>> observed;
  for (int64_t i = 1; i <= 20; ++i) observed.push_back({{i, 1000 + i}});

  ShadowValidateOptions vopts;
  vopts.max_probes = 8;
  ShadowValidator validator(vopts);
  std::vector<ProbeBinding> probes =
      validator.BuildProbes(**exe, kLabels, observed, {}, {});
  ASSERT_LE(probes.size(), 8u);
  int boundary = 0;
  for (const ProbeBinding& probe : probes) {
    if (probe.source == "boundary") ++boundary;
  }
  EXPECT_GE(boundary, 1);
  EXPECT_LE(boundary, 4);
}

// ---------------------------------------------------------------------------
// Differential replay verdicts.

TEST_F(ShadowValidateTest, CleanCandidatePassesAgainstReferenceEvaluator) {
  auto g = EwModel();
  auto exe = DiscCompiler::Compile(*g, kLabels);
  ASSERT_TRUE(exe.ok());

  ShadowValidator validator;
  auto probes = validator.BuildProbes(**exe, kLabels, {{{4, 8}}}, {}, {});
  ASSERT_FALSE(probes.empty());
  ValidationReport report =
      validator.Validate(**exe, nullptr, *g, probes, "gate", "key0");
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_STREQ(report.verdict(), "pass");
  EXPECT_EQ(report.reference, "reference-evaluator");
  EXPECT_GT(report.probes, 0);
  EXPECT_EQ(report.divergences, 0);
  EXPECT_EQ(report.guard_violations, 0);
}

TEST_F(ShadowValidateTest, CleanRespecializationPassesBitwiseVsIncumbent) {
  auto g = EwModel();
  auto incumbent = DiscCompiler::Compile(*g, kLabels);
  ASSERT_TRUE(incumbent.ok());
  CompileOptions options;
  options.likely_dim_values = {{"B", {4}}, {"S", {8}}};
  auto candidate = DiscCompiler::Compile(*g, kLabels, options);
  ASSERT_TRUE(candidate.ok());

  ShadowValidator validator;
  auto probes =
      validator.BuildProbes(**candidate, kLabels, {{{4, 8}}, {{3, 5}}}, {}, {});
  ValidationReport report = validator.Validate(
      **candidate, incumbent->get(), *g, probes, "gate", "key1");
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_EQ(report.reference, "incumbent");
}

TEST_F(ShadowValidateTest, MiscompiledCandidateIsCaughtAsDivergence) {
  auto g = EwModel();
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("kernel.miscompile=always")
                  .ok());
  auto exe = DiscCompiler::Compile(*g, kLabels);
  FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(exe.ok());

  ShadowValidator validator;
  auto probes = validator.BuildProbes(**exe, kLabels, {{{4, 8}}}, {}, {});
  ValidationReport report =
      validator.Validate(**exe, nullptr, *g, probes, "gate", "key2");
  EXPECT_FALSE(report.passed);
  EXPECT_STREQ(report.verdict(), "caught");
  EXPECT_GE(report.divergences, 1) << report.Summary();
}

TEST_F(ShadowValidateTest, GuardMispredictIsCaughtAsGuardViolation) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {8}}, {"S", {128}}};
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("kernel.guard.mispredict=always")
                  .ok());
  auto exe = DiscCompiler::Compile(*g, kLabels, options);
  FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(exe.ok());

  // A binding away from the specialized hot shape: the forced variant's
  // guard rejects it, which the validator's per-probe guard re-check (or
  // the runtime's own launch-plan verification) must flag.
  ShadowValidator validator;
  auto probes = validator.BuildProbes(**exe, kLabels, {{{3, 7}}}, {}, {});
  ValidationReport report =
      validator.Validate(**exe, nullptr, *g, probes, "gate", "key3");
  EXPECT_FALSE(report.passed);
  EXPECT_GE(report.guard_violations, 1) << report.Summary();
}

TEST_F(ShadowValidateTest, ReportJsonIsDeterministicAndParseable) {
  auto g = EwModel();
  auto exe = DiscCompiler::Compile(*g, kLabels);
  ASSERT_TRUE(exe.ok());
  ShadowValidator validator;
  auto probes = validator.BuildProbes(**exe, kLabels, {{{4, 8}}}, {}, {});
  ValidationReport report =
      validator.Validate(**exe, nullptr, *g, probes, "gate", "key4");

  std::string once = report.ToJson().SerializePretty();
  std::string twice = report.ToJson().SerializePretty();
  EXPECT_EQ(once, twice);

  auto parsed = ParseJson(once);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_object());
  for (const char* field :
       {"model", "key_id", "reference", "verdict", "passed", "probes",
        "divergences", "guard_violations", "probe_errors",
        "probe_outcomes"}) {
    EXPECT_NE(parsed->Find(field), nullptr) << field;
  }
  EXPECT_EQ(parsed->Find("verdict")->as_string(), "pass");

  CacheDir dir("report");
  fs::create_directories(dir.path());
  std::string path = dir.path() + "/validation_report.json";
  ASSERT_TRUE(report.WriteJsonFile(path).ok());
  EXPECT_TRUE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// Engine admission gate.

TEST_F(ShadowValidateTest, EngineAdmitsCleanCandidateAfterValidation) {
  auto g = EwModel();
  CompileService service;
  AsyncEngineOptions options;
  options.validate_adoptions = true;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);
  ASSERT_TRUE(engine.Prepare(*g, kLabels).ok());
  service.Drain();  // compile done

  // First query hands the finished compile to the validator instead of
  // adopting it; the candidate is NOT serving yet.
  ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_EQ(engine.swaps(), 0);
  service.Drain();  // validation done

  ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_EQ(engine.swaps(), 1);
  EXPECT_EQ(engine.validations_run(), 1);
  EXPECT_EQ(engine.validations_caught(), 0);
  ASSERT_NE(engine.last_validation_report(), nullptr);
  EXPECT_TRUE(engine.last_validation_report()->passed);
  EXPECT_GE(service.stats().tasks_completed, 1);
}

TEST_F(ShadowValidateTest, EngineRejectsAndQuarantinesMiscompiledCandidate) {
  auto g = EwModel();
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("kernel.miscompile=once")
                  .ok());
  CompileService service;
  AsyncEngineOptions options;
  options.validate_adoptions = true;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);
  ASSERT_TRUE(engine.Prepare(*g, kLabels).ok());
  service.Drain();
  ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());  // to validator
  service.Drain();
  ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());  // verdict

  // Caught: nothing was ever installed, the report says why, and the key
  // is poisoned so the engine refuses to resubmit the same compile.
  EXPECT_EQ(engine.swaps(), 0);
  EXPECT_EQ(engine.validations_caught(), 1);
  ASSERT_NE(engine.last_validation_report(), nullptr);
  EXPECT_FALSE(engine.last_validation_report()->passed);
  CacheKey key =
      CacheKey::Make(*g, kLabels, AsyncEngineOptions{}.profile.compile_options);
  EXPECT_TRUE(service.cache().IsPoisoned(key));
  ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_GE(engine.poisoned_skips(), 1);

  // Zero wrong results: Execute keeps serving interpreter-identical math.
  InterpreterEngine reference(InterpreterProfile::PyTorch());
  ASSERT_TRUE(reference.Prepare(*g, kLabels).ok());
  Tensor in = DeterministicInput(4, 8);
  auto want = reference.Execute({in});
  auto got = engine.Execute({in});
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  for (int64_t e = 0; e < (*want)[0].num_elements(); ++e) {
    EXPECT_EQ((*got)[0].f32_data()[e], (*want)[0].f32_data()[e]);
  }
}

TEST_F(ShadowValidateTest, RuntimeGuardViolationRollsBackAndPoisons) {
  auto g = EwModel();
  CompileService service;
  AsyncEngineOptions options;
  options.profile.feedback_after = 4;  // enables respecialization
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);
  ASSERT_TRUE(engine.Prepare(*g, kLabels).ok());
  service.Drain();
  ASSERT_TRUE(engine.Query({{8, 128}}, DeviceSpec::T4()).ok());
  ASSERT_EQ(engine.swaps(), 1);  // clean generation installed

  // Drive the profile hot enough to respecialize, with the guard
  // mispredict failpoint armed: the respecialized generation dispatches
  // its specialized variant unconditionally.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("kernel.guard.mispredict=always")
                  .ok());
  for (int i = 0; i < 8 && engine.swaps() < 2; ++i) {
    ASSERT_TRUE(engine.Query({{8, 128}}, DeviceSpec::T4()).ok());
    service.Drain();
  }
  FailpointRegistry::Global().DisarmAll();
  ASSERT_EQ(engine.swaps(), 2);

  // The hot shape satisfies the forced variant's guard, so it serves; a
  // different shape trips the runtime guard check -> kDataLoss ->
  // rollback to the clean generation, retried on the same query.
  auto timing = engine.Query({{3, 7}}, DeviceSpec::T4());
  ASSERT_TRUE(timing.ok()) << timing.status().ToString();
  EXPECT_EQ(engine.data_loss_events(), 1);
  EXPECT_EQ(engine.rollbacks(), 1);
  EXPECT_EQ(engine.slot().rollbacks(), 1);

  // The offending (respecialized) key is quarantined; the clean one
  // is not.
  CacheKey clean_key =
      CacheKey::Make(*g, kLabels, options.profile.compile_options);
  EXPECT_FALSE(service.cache().IsPoisoned(clean_key));

  // The restored generation serves bit-identical math.
  InterpreterEngine reference(InterpreterProfile::PyTorch());
  ASSERT_TRUE(reference.Prepare(*g, kLabels).ok());
  Tensor in = DeterministicInput(3, 7);
  auto want = reference.Execute({in});
  auto got = engine.Execute({in});
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  for (int64_t e = 0; e < (*want)[0].num_elements(); ++e) {
    EXPECT_EQ((*got)[0].f32_data()[e], (*want)[0].f32_data()[e]);
  }
}

TEST_F(ShadowValidateTest, QuarantineSurvivesWarmRestartWithZeroCompiles) {
  auto g = EwModel();
  CacheDir dir("restart");
  CompileServiceOptions service_options;
  service_options.cache.dir = dir.path();

  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("kernel.miscompile=once")
                  .ok());
  {
    CompileService service(service_options);
    AsyncEngineOptions options;
    options.validate_adoptions = true;
    AsyncCompileEngine engine(
        &service,
        std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
        options);
    ASSERT_TRUE(engine.Prepare(*g, kLabels).ok());
    service.Drain();
    ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
    service.Drain();
    ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
    ASSERT_EQ(engine.validations_caught(), 1);
    ASSERT_EQ(engine.swaps(), 0);
  }
  FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(fs::exists(dir.path() + "/poisoned.json"));

  // Warm restart: the poison list is reloaded from disk, the engine
  // refuses to resubmit the poisoned key, and the service compiles
  // NOTHING for it — fallback serves correct math indefinitely.
  CompileService restarted(service_options);
  AsyncEngineOptions options;
  options.validate_adoptions = true;
  AsyncCompileEngine engine(
      &restarted,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);
  ASSERT_TRUE(engine.Prepare(*g, kLabels).ok());
  restarted.Drain();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  }
  EXPECT_GE(engine.poisoned_skips(), 1);
  EXPECT_EQ(engine.swaps(), 0);
  EXPECT_EQ(restarted.stats().submitted, 0);
  EXPECT_EQ(restarted.stats().compiled, 0);
}

// ---------------------------------------------------------------------------
// Versioned slot under concurrency (satellite).

TEST_F(ShadowValidateTest, SlotSurvivesConcurrentRunSwapRollback) {
  auto g = EwModel();
  auto a = DiscCompiler::Compile(*g, kLabels);
  auto b = DiscCompiler::Compile(*g, kLabels);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::shared_ptr<const Executable> exe_a = std::move(*a);
  std::shared_ptr<const Executable> exe_b = std::move(*b);

  ExecutableSlot slot;
  slot.Swap(exe_a);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> runs{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::shared_ptr<const Executable> exe = slot.Acquire();
        if (exe == nullptr) continue;
        // The snapshot stays valid across concurrent Swap/Rollback: the
        // run below must never observe a torn executable.
        auto run = exe->RunWithShapes({{4, 8}});
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ++runs;
      }
    });
  }
  // Keep churning generations until the readers have raced plenty of
  // Runs against Swap/Rollback (bounded so a wedged reader cannot hang
  // the test).
  int iterations = 0;
  while (iterations < 200 || (runs.load() < 50 && iterations < 2000000)) {
    slot.Swap(iterations % 2 == 0 ? exe_b : exe_a);
    if (iterations % 3 == 0) slot.Rollback();
    ++iterations;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(runs.load(), 0);
  EXPECT_GT(slot.generation(), 200);
  EXPECT_GT(slot.rollbacks(), 0);
  EXPECT_TRUE(slot.has_executable());
}

TEST_F(ShadowValidateTest, SlotRollbackSemantics) {
  auto g = EwModel();
  auto a = DiscCompiler::Compile(*g, kLabels);
  auto b = DiscCompiler::Compile(*g, kLabels);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::shared_ptr<const Executable> exe_a = std::move(*a);
  std::shared_ptr<const Executable> exe_b = std::move(*b);

  ExecutableSlot slot;
  EXPECT_FALSE(slot.Rollback());  // nothing installed
  slot.Swap(exe_a);
  EXPECT_FALSE(slot.has_previous());  // previous generation was empty
  slot.Swap(exe_b);
  EXPECT_TRUE(slot.has_previous());

  // Warm both plan caches, then roll back: the displaced executable's
  // plans must be gone (a later re-install cannot replay its old life),
  // and the restored one serves.
  ASSERT_TRUE(exe_a->RunWithShapes({{4, 8}}).ok());
  ASSERT_TRUE(exe_b->RunWithShapes({{4, 8}}).ok());
  EXPECT_GT(exe_b->plan_cache_stats().entries, 0);
  int64_t generation = slot.generation();
  ASSERT_TRUE(slot.Rollback());
  EXPECT_EQ(slot.Acquire().get(), exe_a.get());
  EXPECT_EQ(exe_b->plan_cache_stats().entries, 0);
  EXPECT_EQ(slot.generation(), generation + 1);
  EXPECT_EQ(slot.rollbacks(), 1);
  EXPECT_FALSE(slot.Rollback());  // history consumed

  // Clear drops both generations.
  slot.Swap(exe_b);
  slot.Clear();
  EXPECT_FALSE(slot.has_executable());
  EXPECT_FALSE(slot.has_previous());
  EXPECT_FALSE(slot.Rollback());
}

}  // namespace
}  // namespace disc
