#include "serving/serving.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/dynamic_engine.h"
#include "ir/builder.h"

namespace disc {
namespace {

std::vector<Request> FixedRequests(std::vector<std::pair<double, int64_t>>
                                       arrival_and_len) {
  std::vector<Request> requests;
  int64_t id = 0;
  for (auto [arrival, len] : arrival_and_len) {
    requests.push_back({id++, len, arrival});
  }
  return requests;
}

TEST(BatcherTest, NoBatchingIsOnePerRequest) {
  BatcherOptions options;
  options.pad = PadPolicy::kNone;
  auto batches = FormBatches(FixedRequests({{0, 10}, {5, 20}, {9, 30}}),
                             options);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[1].padded_batch, 1);
  EXPECT_EQ(batches[1].padded_seq, 20);
}

TEST(BatcherTest, FillsUpToMaxBatch) {
  BatcherOptions options;
  options.max_batch = 2;
  options.max_wait_us = 1e9;
  auto batches =
      FormBatches(FixedRequests({{0, 8}, {1, 16}, {2, 8}, {3, 8}}), options);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].requests.size(), 2u);
  EXPECT_EQ(batches[0].padded_batch, 2);
  EXPECT_EQ(batches[0].padded_seq, 16);  // padded to longest member
}

TEST(BatcherTest, WaitBudgetClosesBatches) {
  BatcherOptions options;
  options.max_batch = 100;
  options.max_wait_us = 10;
  auto batches =
      FormBatches(FixedRequests({{0, 8}, {5, 8}, {100, 8}}), options);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].requests.size(), 2u);
  EXPECT_EQ(batches[1].requests.size(), 1u);
}

TEST(BatcherTest, BucketPow2Pads) {
  BatcherOptions options;
  options.max_batch = 3;
  options.max_wait_us = 1e9;
  options.pad = PadPolicy::kBucketPow2;
  auto batches =
      FormBatches(FixedRequests({{0, 17}, {1, 30}, {2, 9}}), options);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].padded_batch, 4);   // 3 -> 4
  EXPECT_EQ(batches[0].padded_seq, 32);    // 30 -> 32
}

TEST(BatcherTest, ReadyTimeIsLastArrival) {
  BatcherOptions options;
  options.max_batch = 2;
  auto batches = FormBatches(FixedRequests({{0, 8}, {7, 8}}), options);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_DOUBLE_EQ(batches[0].ready_us, 7.0);
}

TEST(ServingTest, SyntheticStreamIsSortedAndDeterministic) {
  auto a = SyntheticRequestStream(50, 100.0, 3);
  auto b = SyntheticRequestStream(50, 100.0, 3);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    EXPECT_EQ(a[i].seq_len, b[i].seq_len);
  }
}

TEST(ServingTest, EndToEndSimulationProducesSaneStats) {
  Graph g("serve");
  GraphBuilder b(&g);
  const int64_t kHidden = 32;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  b.Output({b.Softmax(b.Relu(x))});

  auto engine = MakeBaseline("DISC");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Prepare(g, {{"B", "S", ""}}).ok());

  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  auto requests = SyntheticRequestStream(64, 50.0, 7);
  BatcherOptions options;
  auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->p50_us, 0.0);
  EXPECT_GE(stats->p95_us, stats->p50_us);
  EXPECT_GE(stats->p99_us, stats->p95_us);
  EXPECT_GT(stats->throughput_qps, 0.0);
  EXPECT_GT(stats->batches, 0);
  // batch-max padding wastes some tokens (mixed lengths) but < 60%.
  EXPECT_GT(stats->padded_token_fraction, 0.0);
  EXPECT_LT(stats->padded_token_fraction, 0.6);
}

TEST(ServingTest, BucketPaddingWastesMoreThanBatchMax) {
  Graph g("serve2");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Relu(x)});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  auto requests = SyntheticRequestStream(64, 50.0, 9);

  double waste_batch_max = 0;
  double waste_bucket = 0;
  for (PadPolicy policy : {PadPolicy::kBatchMax, PadPolicy::kBucketPow2}) {
    auto engine = MakeBaseline("DISC");
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(g, {{"B", "S", ""}}).ok());
    BatcherOptions options;
    options.pad = policy;
    auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                                 DeviceSpec::T4());
    ASSERT_TRUE(stats.ok());
    if (policy == PadPolicy::kBatchMax) {
      waste_batch_max = stats->padded_token_fraction;
    } else {
      waste_bucket = stats->padded_token_fraction;
    }
  }
  EXPECT_GT(waste_bucket, waste_batch_max);
}

TEST(ServingTest, PlanCacheSpeedsUpBatchMaxServing) {
  // Under kBatchMax the padded (B, S) signatures repeat heavily (full
  // batches pad to the same hot lengths), so the launch-plan cache serves
  // most batches on the fast path — lower host cost per batch, strictly
  // lower mean latency, identical device work.
  Graph g("serve4");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Softmax(b.Relu(x))});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  auto requests = SyntheticRequestStream(128, 5.0, 13);

  auto run = [&](bool use_plan_cache) {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.use_plan_cache = use_plan_cache;
    DynamicCompilerEngine engine(profile);
    DISC_CHECK_OK(engine.Prepare(g, {{"B", "S", ""}}));
    BatcherOptions options;
    options.pad = PadPolicy::kBatchMax;
    auto stats = SimulateServing(&engine, shape_fn, requests, options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  };
  ServingStats on = run(true);
  ServingStats off = run(false);
  EXPECT_GT(on.plan_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(off.plan_hit_rate, 0.0);
  EXPECT_LT(on.mean_us, off.mean_us);
  EXPECT_NE(on.ToString().find("plan_hits="), std::string::npos);
}

TEST(ServingTest, BatchingBeatsNoBatchingUnderLoad) {
  Graph g("serve3");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Softmax(x)});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  // Arrivals much faster than per-query service time: without batching
  // the queue grows without bound.
  auto requests = SyntheticRequestStream(64, 1.0, 11);

  auto run = [&](PadPolicy policy) {
    auto engine = MakeBaseline("DISC");
    DISC_CHECK_OK(engine.status());
    DISC_CHECK_OK((*engine)->Prepare(g, {{"B", "S", ""}}));
    BatcherOptions options;
    options.pad = policy;
    auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  };
  ServingStats batched = run(PadPolicy::kBatchMax);
  ServingStats solo = run(PadPolicy::kNone);
  EXPECT_GT(batched.throughput_qps, solo.throughput_qps);
  EXPECT_LT(batched.p99_us, solo.p99_us);
}

}  // namespace
}  // namespace disc
