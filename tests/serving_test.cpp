#include "serving/serving.h"

#include <set>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/dynamic_engine.h"
#include "ir/builder.h"
#include "support/metrics.h"

namespace disc {
namespace {

std::vector<Request> FixedRequests(std::vector<std::pair<double, int64_t>>
                                       arrival_and_len) {
  std::vector<Request> requests;
  int64_t id = 0;
  for (auto [arrival, len] : arrival_and_len) {
    requests.push_back({id++, len, arrival});
  }
  return requests;
}

TEST(BatcherTest, NoBatchingIsOnePerRequest) {
  BatcherOptions options;
  options.pad = PadPolicy::kNone;
  auto batches = FormBatches(FixedRequests({{0, 10}, {5, 20}, {9, 30}}),
                             options);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[1].padded_batch, 1);
  EXPECT_EQ(batches[1].padded_seq, 20);
}

TEST(BatcherTest, FillsUpToMaxBatch) {
  BatcherOptions options;
  options.max_batch = 2;
  options.max_wait_us = 1e9;
  auto batches =
      FormBatches(FixedRequests({{0, 8}, {1, 16}, {2, 8}, {3, 8}}), options);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].requests.size(), 2u);
  EXPECT_EQ(batches[0].padded_batch, 2);
  EXPECT_EQ(batches[0].padded_seq, 16);  // padded to longest member
}

TEST(BatcherTest, WaitBudgetClosesBatches) {
  BatcherOptions options;
  options.max_batch = 100;
  options.max_wait_us = 10;
  auto batches =
      FormBatches(FixedRequests({{0, 8}, {5, 8}, {100, 8}}), options);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].requests.size(), 2u);
  EXPECT_EQ(batches[1].requests.size(), 1u);
}

TEST(BatcherTest, BucketPow2Pads) {
  BatcherOptions options;
  options.max_batch = 3;
  options.max_wait_us = 1e9;
  options.pad = PadPolicy::kBucketPow2;
  auto batches =
      FormBatches(FixedRequests({{0, 17}, {1, 30}, {2, 9}}), options);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].padded_batch, 4);   // 3 -> 4
  EXPECT_EQ(batches[0].padded_seq, 32);    // 30 -> 32
}

TEST(BatcherTest, ReadyTimeIsLastArrival) {
  BatcherOptions options;
  options.max_batch = 2;
  auto batches = FormBatches(FixedRequests({{0, 8}, {7, 8}}), options);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_DOUBLE_EQ(batches[0].ready_us, 7.0);
}

TEST(BatcherTest, EmptyStreamFormsNoBatches) {
  for (PadPolicy policy :
       {PadPolicy::kNone, PadPolicy::kBatchMax, PadPolicy::kBucketPow2}) {
    BatcherOptions options;
    options.pad = policy;
    EXPECT_TRUE(FormBatches({}, options).empty());
  }
}

TEST(BatcherTest, ArrivalExactlyAtWaitBoundJoinsBatch) {
  BatcherOptions options;
  options.max_batch = 100;
  options.max_wait_us = 10;
  // The bound check is strict '>': 10us after the oldest member is still
  // inside the wait budget, 10.5us is not.
  auto at_bound = FormBatches(FixedRequests({{0, 8}, {10, 8}}), options);
  ASSERT_EQ(at_bound.size(), 1u);
  EXPECT_EQ(at_bound[0].requests.size(), 2u);
  auto past_bound = FormBatches(FixedRequests({{0, 8}, {10.5, 8}}), options);
  EXPECT_EQ(past_bound.size(), 2u);
}

TEST(BatcherTest, UnsortedArrivalsFormSameBatchesAsSorted) {
  BatcherOptions options;
  options.max_batch = 2;
  auto sorted = FormBatches(
      FixedRequests({{0, 8}, {1, 16}, {2, 8}, {3, 32}}), options);
  auto shuffled = FormBatches(
      FixedRequests({{3, 32}, {0, 8}, {2, 8}, {1, 16}}), options);
  ASSERT_EQ(shuffled.size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(shuffled[i].requests.size(), sorted[i].requests.size());
    EXPECT_EQ(shuffled[i].padded_seq, sorted[i].padded_seq);
    EXPECT_DOUBLE_EQ(shuffled[i].ready_us, sorted[i].ready_us);
    for (size_t j = 0; j < sorted[i].requests.size(); ++j) {
      EXPECT_DOUBLE_EQ(shuffled[i].requests[j].arrival_us,
                       sorted[i].requests[j].arrival_us);
    }
  }
}

TEST(BatcherTest, EqualArrivalsBatchIdenticallyForEveryInputPermutation) {
  // Regression: sorting by arrival alone left equal-arrival requests in
  // caller order, so the same logical stream split into different batches
  // depending on input permutation — decode traces replayed through
  // FormBatches were not byte-stable. The order is now the total order
  // (arrival, effective deadline, id).
  BatcherOptions options;
  options.max_batch = 2;
  std::vector<Request> requests;
  for (int64_t id = 0; id < 6; ++id) {
    Request r;
    r.id = id;
    r.seq_len = 8 * (id + 1);
    r.arrival_us = 100.0;  // all tie on arrival
    requests.push_back(r);
  }
  auto reference = FormBatches(requests, options);
  ASSERT_EQ(reference.size(), 3u);
  // Every adjacent-transposition permutation (generates the whole group)
  // must produce identical batch membership, in order.
  for (size_t swap = 0; swap + 1 < requests.size(); ++swap) {
    auto permuted = requests;
    std::swap(permuted[swap], permuted[swap + 1]);
    auto batches = FormBatches(permuted, options);
    ASSERT_EQ(batches.size(), reference.size());
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_EQ(batches[i].requests.size(), reference[i].requests.size());
      for (size_t j = 0; j < batches[i].requests.size(); ++j) {
        EXPECT_EQ(batches[i].requests[j].id, reference[i].requests[j].id)
            << "swap " << swap << " changed batch " << i;
      }
    }
  }
}

TEST(BatcherTest, DeadlineBreaksArrivalTiesTighterFirst) {
  BatcherOptions options;
  options.max_batch = 2;
  std::vector<Request> requests;
  // Same arrival; deadlines 900, none, 500, none. No-deadline requests
  // sort as infinitely-lax (NOT as deadline 0, which would put them
  // first); ties among the deadline-free fall back to id.
  const std::vector<double> deadlines = {900.0, 0.0, 500.0, 0.0};
  for (int64_t id = 0; id < 4; ++id) {
    Request r;
    r.id = id;
    r.seq_len = 8;
    r.arrival_us = 50.0;
    r.deadline_us = deadlines[static_cast<size_t>(id)];
    requests.push_back(r);
  }
  auto batches = FormBatches(requests, options);
  ASSERT_EQ(batches.size(), 2u);
  // Tighter deadlines batch first: (500, 900), then (none id=1, none id=3).
  EXPECT_EQ(batches[0].requests[0].id, 2);
  EXPECT_EQ(batches[0].requests[1].id, 0);
  EXPECT_EQ(batches[1].requests[0].id, 1);
  EXPECT_EQ(batches[1].requests[1].id, 3);
}

TEST(BatcherTest, MaxBatchOneEqualsNoBatching) {
  auto requests = FixedRequests({{0, 10}, {5, 20}, {9, 30}});
  BatcherOptions one;
  one.max_batch = 1;
  one.pad = PadPolicy::kBatchMax;
  BatcherOptions none;
  none.pad = PadPolicy::kNone;
  auto a = FormBatches(requests, one);
  auto b = FormBatches(requests, none);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].padded_batch, b[i].padded_batch);
    EXPECT_EQ(a[i].padded_seq, b[i].padded_seq);
    EXPECT_DOUBLE_EQ(a[i].ready_us, b[i].ready_us);
  }
}

TEST(ServingTest, SyntheticStreamIsSortedAndDeterministic) {
  auto a = SyntheticRequestStream(50, 100.0, 3);
  auto b = SyntheticRequestStream(50, 100.0, 3);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    EXPECT_EQ(a[i].seq_len, b[i].seq_len);
  }
}

TEST(ServingTest, EndToEndSimulationProducesSaneStats) {
  Graph g("serve");
  GraphBuilder b(&g);
  const int64_t kHidden = 32;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  b.Output({b.Softmax(b.Relu(x))});

  auto engine = MakeBaseline("DISC");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Prepare(g, {{"B", "S", ""}}).ok());

  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  auto requests = SyntheticRequestStream(64, 50.0, 7);
  BatcherOptions options;
  auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->p50_us, 0.0);
  EXPECT_GE(stats->p95_us, stats->p50_us);
  EXPECT_GE(stats->p99_us, stats->p95_us);
  EXPECT_GT(stats->throughput_qps, 0.0);
  EXPECT_GT(stats->batches, 0);
  // batch-max padding wastes some tokens (mixed lengths) but < 60%.
  EXPECT_GT(stats->padded_token_fraction, 0.0);
  EXPECT_LT(stats->padded_token_fraction, 0.6);
}

TEST(ServingTest, BucketPaddingWastesMoreThanBatchMax) {
  Graph g("serve2");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Relu(x)});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  auto requests = SyntheticRequestStream(64, 50.0, 9);

  double waste_batch_max = 0;
  double waste_bucket = 0;
  for (PadPolicy policy : {PadPolicy::kBatchMax, PadPolicy::kBucketPow2}) {
    auto engine = MakeBaseline("DISC");
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(g, {{"B", "S", ""}}).ok());
    BatcherOptions options;
    options.pad = policy;
    auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                                 DeviceSpec::T4());
    ASSERT_TRUE(stats.ok());
    if (policy == PadPolicy::kBatchMax) {
      waste_batch_max = stats->padded_token_fraction;
    } else {
      waste_bucket = stats->padded_token_fraction;
    }
  }
  EXPECT_GT(waste_bucket, waste_batch_max);
}

TEST(ServingTest, PlanCacheSpeedsUpBatchMaxServing) {
  // Under kBatchMax the padded (B, S) signatures repeat heavily (full
  // batches pad to the same hot lengths), so the launch-plan cache serves
  // most batches on the fast path — lower host cost per batch, strictly
  // lower mean latency, identical device work.
  Graph g("serve4");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Softmax(b.Relu(x))});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  auto requests = SyntheticRequestStream(128, 5.0, 13);

  auto run = [&](bool use_plan_cache) {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.use_plan_cache = use_plan_cache;
    DynamicCompilerEngine engine(profile);
    DISC_CHECK_OK(engine.Prepare(g, {{"B", "S", ""}}));
    BatcherOptions options;
    options.pad = PadPolicy::kBatchMax;
    auto stats = SimulateServing(&engine, shape_fn, requests, options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  };
  ServingStats on = run(true);
  ServingStats off = run(false);
  EXPECT_GT(on.plan_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(off.plan_hit_rate, 0.0);
  EXPECT_LT(on.mean_us, off.mean_us);
  EXPECT_NE(on.ToString().find("plan_hits="), std::string::npos);
}

TEST(ServingTest, BatchingBeatsNoBatchingUnderLoad) {
  Graph g("serve3");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
  b.Output({b.Softmax(x)});
  auto shape_fn = [](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, 32}};
  };
  // Arrivals much faster than per-query service time: without batching
  // the queue grows without bound.
  auto requests = SyntheticRequestStream(64, 1.0, 11);

  auto run = [&](PadPolicy policy) {
    auto engine = MakeBaseline("DISC");
    DISC_CHECK_OK(engine.status());
    DISC_CHECK_OK((*engine)->Prepare(g, {{"B", "S", ""}}));
    BatcherOptions options;
    options.pad = policy;
    auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  };
  ServingStats batched = run(PadPolicy::kBatchMax);
  ServingStats solo = run(PadPolicy::kNone);
  EXPECT_GT(batched.throughput_qps, solo.throughput_qps);
  EXPECT_LT(batched.p99_us, solo.p99_us);
}

// Scripted engine for degradation tests: fails the first `fail_first`
// queries with a configurable code, then serves each query in a fixed
// 100us.
class FlakyEngine : public Engine {
 public:
  explicit FlakyEngine(int64_t fail_first,
                       StatusCode code = StatusCode::kUnavailable)
      : fail_first_(fail_first), code_(code) {}

  const std::string& name() const override { return name_; }
  Status Prepare(const Graph&,
                 std::vector<std::vector<std::string>>) override {
    return Status::OK();
  }
  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>&,
                             const DeviceSpec&) override {
    CountQuery();
    if (attempts_++ < fail_first_) return Status(code_, "scripted failure");
    EngineTiming timing;
    timing.total_us = 100.0;
    timing.device_us = 100.0;
    return timing;
  }
  int64_t attempts() const { return attempts_; }

 private:
  std::string name_ = "flaky";
  int64_t fail_first_;
  StatusCode code_;
  int64_t attempts_ = 0;
};

std::vector<std::vector<int64_t>> UnitShape(int64_t, int64_t) {
  return {{1}};
}

TEST(ServingRobustnessTest, RetryableErrorsAreRetriedWithBackoff) {
  FlakyEngine engine(/*fail_first=*/2);
  BatcherOptions options;
  options.max_batch = 4;
  options.max_retries = 2;
  options.retry_backoff_us = 500.0;
  auto requests = FixedRequests({{0, 8}, {1, 8}});
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->completed, 2);
  EXPECT_EQ(stats->failed, 0);
  EXPECT_EQ(stats->retries, 2);
  EXPECT_EQ(engine.attempts(), 3);
  // The two backoffs (500 + 1000) delayed the launch; latency reflects the
  // simulated wait, not just the 100us execution.
  EXPECT_GE(stats->p50_us, 1500.0);
}

TEST(ServingRobustnessTest, RetriesExhaustedMarksBatchFailed) {
  FlakyEngine engine(/*fail_first=*/100);
  BatcherOptions options;
  options.max_retries = 2;
  auto requests = FixedRequests({{0, 8}, {1, 8}, {5000, 8}});
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 0);
  EXPECT_EQ(stats->failed, 3);
  EXPECT_EQ(stats->error_counts.at("Unavailable"), 3);
  EXPECT_EQ(stats->submitted,
            stats->completed + stats->shed + stats->deadline_missed +
                stats->failed);
}

TEST(ServingRobustnessTest, NonRetryableErrorFailsWithoutRetry) {
  FlakyEngine engine(/*fail_first=*/100, StatusCode::kInternal);
  BatcherOptions options;
  options.max_retries = 5;
  auto requests = FixedRequests({{0, 8}});
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->retries, 0);
  EXPECT_EQ(engine.attempts(), 1);
  EXPECT_EQ(stats->failed, 1);
  EXPECT_EQ(stats->error_counts.at("Internal"), 1);
}

TEST(ServingRobustnessTest, ExpiredDeadlineDropsRequestPreExecution) {
  FlakyEngine engine(/*fail_first=*/0);
  BatcherOptions options;
  options.max_batch = 2;
  auto requests = FixedRequests({{0, 8}, {1, 8}});
  // First request's deadline passes while the batch waits for the second
  // member; the second has slack.
  requests[0].deadline_us = 0.5;
  requests[1].deadline_us = 1e9;
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deadline_missed, 1);
  EXPECT_EQ(stats->completed, 1);
  EXPECT_EQ(stats->submitted, 2);
}

TEST(ServingRobustnessTest, DeepQueueShedsWholeBatches) {
  // 100us per batch of one, arrivals every 1us: the queue builds far past
  // depth 4, so most batches shed instead of queueing unboundedly.
  FlakyEngine engine(/*fail_first=*/0);
  BatcherOptions options;
  options.max_batch = 1;
  options.max_queue_depth = 4;
  std::vector<Request> requests;
  for (int64_t i = 0; i < 64; ++i) {
    requests.push_back({i, 8, static_cast<double>(i)});
  }
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->shed, 0);
  EXPECT_GT(stats->completed, 0);
  EXPECT_EQ(stats->submitted,
            stats->completed + stats->shed + stats->deadline_missed +
                stats->failed);
  // Shedding bounds the latency of the survivors: nobody waits behind an
  // unbounded queue.
  EXPECT_LT(stats->p99_us, 100.0 * (options.max_queue_depth + 2));
}

// Memory-aware admission on the arena-planning engine: the batcher asks
// the engine for the predicted footprint of each batch's padded shape and
// sheds batches that would not fit.
class ServingMemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphBuilder b(&graph_);
    Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 32});
    b.Output({b.Softmax(b.Relu(x))});
  }

  static std::vector<std::vector<int64_t>> ShapeFor(int64_t batch,
                                                    int64_t seq) {
    return {{batch, seq, 32}};
  }

  // Two small and two large requests, spaced so each forms its own batch.
  static std::vector<Request> MixedRequests() {
    return FixedRequests({{0, 16}, {1000, 128}, {2000, 16}, {3000, 128}});
  }

  Graph graph_{"serve-mem"};
};

TEST_F(ServingMemoryTest, AdmissionShedsPredictedOversizeBatches) {
  DynamicCompilerEngine engine(DynamicProfile::DiscArena());
  DISC_CHECK_OK(engine.Prepare(graph_, {{"B", "S", ""}}));
  auto small = engine.PredictPeakBytes(ShapeFor(1, 16));
  auto large = engine.PredictPeakBytes(ShapeFor(1, 128));
  ASSERT_TRUE(small.ok() && large.ok());
  ASSERT_LT(*small, *large);

  BatcherOptions options;
  options.max_batch = 1;
  options.memory_limit_bytes = (*small + *large) / 2;
  auto stats = SimulateServing(&engine, ShapeFor, MixedRequests(), options,
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->completed, 2);
  EXPECT_EQ(stats->memory_shed, 2);
  // memory_shed is a sub-count of shed: the accounting invariant holds
  // with no extra term.
  EXPECT_EQ(stats->shed, 2);
  EXPECT_EQ(stats->failed, 0);
  EXPECT_EQ(stats->submitted, stats->completed + stats->shed +
                                  stats->deadline_missed + stats->failed);
  EXPECT_NE(stats->ToString().find("memory_shed=2"), std::string::npos);
  EXPECT_GT(engine.stats().memory_predictions, 0);
  EXPECT_GT(engine.stats().last_predicted_peak_bytes, 0);
}

TEST_F(ServingMemoryTest, NoLimitAdmitsEverything) {
  DynamicCompilerEngine engine(DynamicProfile::DiscArena());
  DISC_CHECK_OK(engine.Prepare(graph_, {{"B", "S", ""}}));
  BatcherOptions options;
  options.max_batch = 1;
  auto stats = SimulateServing(&engine, ShapeFor, MixedRequests(), options,
                               DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 4);
  EXPECT_EQ(stats->memory_shed, 0);
  EXPECT_EQ(engine.stats().memory_predictions, 0)
      << "no predictions should be made when admission is off";
}

TEST_F(ServingMemoryTest, AdmissionPreventsMidRunExhaustion) {
  // Device capacity enforced by the engine's allocator. Without admission
  // the oversized batches burn retries and fail with ResourceExhausted;
  // with the same budget given to the batcher they are shed up front.
  auto run = [&](bool admission_on) {
    DynamicProfile profile = DynamicProfile::DiscArena();
    DynamicCompilerEngine probe(profile);
    DISC_CHECK_OK(probe.Prepare(graph_, {{"B", "S", ""}}));
    auto small = probe.PredictPeakBytes(ShapeFor(1, 16));
    auto large = probe.PredictPeakBytes(ShapeFor(1, 128));
    DISC_CHECK_OK(small.status());
    DISC_CHECK_OK(large.status());
    const int64_t budget = (*small + *large) / 2;

    profile.memory_limit_bytes = budget;
    DynamicCompilerEngine engine(profile);
    DISC_CHECK_OK(engine.Prepare(graph_, {{"B", "S", ""}}));
    BatcherOptions options;
    options.max_batch = 1;
    options.memory_limit_bytes = admission_on ? budget : 0;
    auto stats = SimulateServing(&engine, ShapeFor, MixedRequests(), options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  };
  ServingStats without = run(false);
  EXPECT_EQ(without.failed, 2);
  EXPECT_GT(without.retries, 0);  // ResourceExhausted is retryable
  EXPECT_EQ(without.error_counts["ResourceExhausted"], 2);
  ServingStats with = run(true);
  EXPECT_EQ(with.failed, 0);
  EXPECT_EQ(with.memory_shed, 2);
  EXPECT_EQ(with.completed, 2);
}

TEST(ServingObservabilityTest, EndToEndLatencyHistogramAndLedgers) {
  Histogram* hist = MetricsRegistry::Global().GetHistogram(
      "serving.request_latency_us");
  const int64_t count_before = hist->count();
  FlakyEngine engine(/*fail_first=*/0);
  BatcherOptions options;
  options.max_batch = 2;
  auto requests = FixedRequests({{0, 8}, {1, 8}, {500, 8}});
  auto stats =
      SimulateServing(&engine, UnitShape, requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 3);
  // One histogram observation per completed request, and one ledger each
  // that sums to the request's end-to-end latency.
  EXPECT_EQ(hist->count() - count_before, 3);
  ASSERT_EQ(stats->completed_requests.size(), 3u);
  for (const CompletedRequest& r : stats->completed_requests) {
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_NEAR(r.ledger.TotalUs(), r.e2e_us, 1e-6)
        << r.ledger.ToString();
    EXPECT_DOUBLE_EQ(r.ledger.device_us, 100.0);  // FlakyEngine's cost
  }
  // The exemplar planted for a completed request is one of its trace ids.
  std::set<uint64_t> ids;
  for (const CompletedRequest& r : stats->completed_requests) {
    ids.insert(r.trace_id);
  }
  bool exemplar_found = false;
  for (const Histogram::Exemplar& e : hist->exemplars()) {
    if (ids.count(e.id)) exemplar_found = true;
  }
  EXPECT_TRUE(exemplar_found);
}

}  // namespace
}  // namespace disc
