#include "support/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "baselines/dynamic_engine.h"
#include "compiler/compiler.h"
#include "models/models.h"
#include "sim/device.h"

namespace disc {
namespace {

TEST(CounterTest, IncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 4.0, 16.0});
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (inclusive)
  h.Observe(1.5);   // <= 4
  h.Observe(4.0);   // <= 4 (inclusive)
  h.Observe(16.0);  // <= 16 (inclusive)
  h.Observe(16.5);  // overflow
  h.Observe(1e9);   // overflow
  std::vector<int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 7);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h({10.0});
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(6.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(HistogramTest, ExponentialBounds) {
  std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
}

TEST(HistogramTest, ConcurrentObserves) {
  Histogram h({10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(5.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.bucket_counts()[0], kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 * kThreads * kPerThread);
}

TEST(MetricsRegistryTest, CountersAreStableAndNamed) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.registry.a");
  Counter* again = reg.GetCounter("test.registry.a");
  EXPECT_EQ(a, again);  // stable pointer, cacheable
  int64_t before = a->value();
  CountMetric("test.registry.a", 3);
  EXPECT_EQ(a->value(), before + 3);
}

TEST(MetricsRegistryTest, HistogramFirstRegistrationWinsBounds) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.registry.hist", {1.0, 2.0});
  Histogram* again = reg.GetHistogram("test.registry.hist", {99.0});
  EXPECT_EQ(h, again);
  ASSERT_EQ(h->bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h->bounds()[1], 2.0);
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredCounter) {
  CountMetric("test.registry.snapshot", 5);
  auto snapshot = MetricsRegistry::Global().CounterSnapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot) {
    if (name == "test.registry.snapshot") {
      found = true;
      EXPECT_GE(value, 5);
    }
  }
  EXPECT_TRUE(found);
}

// The satellite guarantee: EngineStats and the global registry are fed by
// the same choke points, so their deltas can never disagree. Counters are
// process-global, so compare deltas, not absolute values.
TEST(MetricsAgreementTest, EngineStatsMatchRegistryCounters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* queries = reg.GetCounter("engine.queries");
  Counter* plan_hits = reg.GetCounter("engine.plan_cache.hit");
  Counter* plan_misses = reg.GetCounter("engine.plan_cache.miss");
  Counter* compilations = reg.GetCounter("engine.compilations");
  const int64_t q0 = queries->value();
  const int64_t h0 = plan_hits->value();
  const int64_t m0 = plan_misses->value();
  const int64_t c0 = compilations->value();

  ModelConfig config;
  Model model = BuildMlp(config);
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  ASSERT_TRUE(engine.Prepare(*model.graph, model.input_dim_labels).ok());
  const DeviceSpec device = DeviceSpec::A10();
  // Repeat shapes so the plan cache records both misses and hits.
  std::vector<ShapeSet> trace = {model.trace[0], model.trace[1],
                                 model.trace[0], model.trace[1],
                                 model.trace[0]};
  for (const ShapeSet& shapes : trace) {
    ASSERT_TRUE(engine.Query(shapes, device).ok());
  }

  const EngineStats& stats = engine.stats();
  EXPECT_EQ(queries->value() - q0, stats.queries);
  EXPECT_EQ(plan_hits->value() - h0, stats.launch_plan_hits);
  EXPECT_EQ(plan_misses->value() - m0, stats.launch_plan_misses);
  EXPECT_EQ(compilations->value() - c0, stats.compilations);
  EXPECT_GT(stats.launch_plan_hits, 0);
  EXPECT_GT(stats.launch_plan_misses, 0);
}

TEST(MetricsAgreementTest, RunProfileAllocatorCountersMatchRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* alloc_calls = reg.GetCounter("runtime.alloc.calls");
  Counter* alloc_hits = reg.GetCounter("runtime.alloc.cache_hits");
  Counter* run_count = reg.GetCounter("runtime.run.count");
  const int64_t calls0 = alloc_calls->value();
  const int64_t hits0 = alloc_hits->value();
  const int64_t runs0 = run_count->value();

  ModelConfig config;
  Model model = BuildMlp(config);
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  int64_t profile_calls = 0, profile_hits = 0, runs = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = (*exe)->RunWithShapes(model.trace[0]);
    ASSERT_TRUE(r.ok());
    profile_calls += r->profile.alloc_calls;
    profile_hits += r->profile.alloc_cache_hits;
    ++runs;
  }
  EXPECT_EQ(alloc_calls->value() - calls0, profile_calls);
  EXPECT_EQ(alloc_hits->value() - hits0, profile_hits);
  EXPECT_EQ(run_count->value() - runs0, runs);
  EXPECT_GT(profile_calls, 0);
}

TEST(MetricsAgreementTest, KernelMemoryBoundCounterMatchesRunProfile) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* memory_bound = reg.GetCounter("runtime.kernel.memory_bound");
  // Same bounds ExecutePlan registers with — first registration wins, so
  // the pointer is identical regardless of which side ran first.
  Histogram* utilization = reg.GetHistogram(
      "runtime.kernel.utilization",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  const int64_t mb0 = memory_bound->value();
  const int64_t util0 = utilization->count();

  ModelConfig config;
  Model model = BuildMlp(config);
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  int64_t profile_memory_bound = 0, generated_launches = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = (*exe)->RunWithShapes(model.trace[i % model.trace.size()]);
    ASSERT_TRUE(r.ok());
    profile_memory_bound += r->profile.memory_bound_launches;
    generated_launches += r->profile.kernel_launches;
  }
  // Same choke point feeds both, so the deltas agree exactly.
  EXPECT_EQ(memory_bound->value() - mb0, profile_memory_bound);
  // One utilization observation per *generated* kernel launch (library
  // calls count toward memory_bound but not the codegen histogram).
  EXPECT_EQ(utilization->count() - util0, generated_launches);
  EXPECT_GT(profile_memory_bound, 0);  // fused elementwise = memory bound
  // Utilization is a fraction of peak: first registration fixed bounds
  // at <= 1.0, so nothing can land in the overflow bucket.
  EXPECT_EQ(utilization->bucket_counts().back(), 0);
}

TEST(MetricsAgreementTest, PlanCacheStatsMatchRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* hits = reg.GetCounter("runtime.plan_cache.hit");
  Counter* misses = reg.GetCounter("runtime.plan_cache.miss");
  const int64_t h0 = hits->value();
  const int64_t m0 = misses->value();

  ModelConfig config;
  Model model = BuildMlp(config);
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*exe)->RunWithShapes(model.trace[0]).ok());
  }
  auto stats = (*exe)->plan_cache_stats();
  EXPECT_EQ(hits->value() - h0, stats.hits);
  EXPECT_EQ(misses->value() - m0, stats.misses);
  EXPECT_EQ(stats.misses, 1);  // first run builds, the rest replay
  EXPECT_EQ(stats.hits, 3);
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations uniform in (0, 10]: p50 interpolates to mid-bucket.
  for (int i = 1; i <= 10; ++i) h.Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
  // Add 10 in (10, 20]: the median moves to the first bucket's boundary.
  for (int i = 11; i <= 20; ++i) h.Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsNaN) {
  // An empty histogram used to report Quantile = 0.0 — indistinguishable
  // from a genuinely instant p99. The sentinel is NaN at every q.
  Histogram h({10.0, 20.0});
  EXPECT_TRUE(std::isnan(h.Quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.Quantile(0.99)));
  // Histograms with no finite bounds at all are also "empty" until fed.
  Histogram unbounded({});
  EXPECT_TRUE(std::isnan(unbounded.Quantile(0.5)));
}

TEST(HistogramQuantileTest, OverflowBucketReturnsInfinity) {
  Histogram h({10.0, 20.0});
  h.Observe(1000.0);  // overflow bucket only
  // No upper bound to interpolate against: the old clamp reported "p99 =
  // 20" when every observation exceeded 20. +inf is the honest answer.
  EXPECT_TRUE(std::isinf(h.Quantile(0.99)));
  EXPECT_GT(h.Quantile(0.99), 0.0);  // positive infinity, specifically
  // Mixed mass: quantiles below the overflow share stay finite and exact.
  for (int i = 0; i < 9; ++i) h.Observe(5.0);  // 9 finite, 1 overflow
  // target = 0.5*10 = 5 of 9 in (0, 10]: interpolates to 10 * 5/9.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0 * 5.0 / 9.0);
  EXPECT_TRUE(std::isinf(h.Quantile(0.99)));  // still in overflow
}

TEST(HistogramQuantileTest, ToStringReportsEstimates) {
  Histogram h({10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.Observe(5.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(HistogramExemplarTest, ExemplarsLandInTheValueBucket) {
  Histogram h({10.0, 100.0});
  h.Observe(5.0, /*exemplar_id=*/77);
  h.Observe(50.0, /*exemplar_id=*/88);
  h.Observe(500.0, /*exemplar_id=*/99);
  h.Observe(42.0);  // no exemplar — must not disturb the stored ones
  auto exemplars = h.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  EXPECT_EQ(exemplars[0].id, 77u);
  EXPECT_DOUBLE_EQ(exemplars[0].value, 5.0);
  EXPECT_EQ(exemplars[1].id, 88u);
  EXPECT_EQ(exemplars[2].id, 99u);
  // Last writer wins within a bucket.
  h.Observe(7.0, /*exemplar_id=*/111);
  EXPECT_EQ(h.exemplars()[0].id, 111u);
  // Zero ids are "no exemplar" and never stored.
  h.Observe(8.0, /*exemplar_id=*/0);
  EXPECT_EQ(h.exemplars()[0].id, 111u);
  std::string s = h.ToString();
  EXPECT_NE(s.find("trace=111@7"), std::string::npos);
}

}  // namespace
}  // namespace disc
