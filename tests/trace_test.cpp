#include "support/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace disc {
namespace {

// TraceSession::Global() is process-wide state shared across tests; every
// test starts from a clean, disabled session.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::Global().Disable();
    TraceSession::Global().set_capacity(1 << 16);
    TraceSession::Global().Clear();
  }
  void TearDown() override {
    TraceSession::Global().Disable();
    TraceSession::Global().Clear();
  }
};

// Minimal structural JSON validator: tracks brace/bracket balance while
// honoring string literals and escapes. Enough to catch broken quoting,
// unescaped control characters, and truncated output.
bool IsStructurallyValidJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

std::string DumpJson() {
  std::ostringstream os;
  TraceSession::Global().WriteJson(os);
  return os.str();
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceSession& s = TraceSession::Global();
  ASSERT_FALSE(s.enabled());
  {
    DISC_TRACE_SCOPE("should-not-appear", "test");
    s.AddCompleteEvent("manual", "test", 0.0, 1.0, TraceSession::kWallPid, 0);
    s.AddInstantEvent("instant", "test");
  }
  EXPECT_EQ(s.num_events(), 0u);
  EXPECT_EQ(s.dropped_events(), 0);
  // Empty sessions still export valid JSON.
  std::string json = DumpJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, DisabledScopeIsInactive) {
  TraceScope scope("never", "test");
  EXPECT_FALSE(scope.active());
  scope.AddArg("key", "value");  // must be a safe no-op
}

TEST_F(TraceTest, NestedSpansProduceWellFormedJson) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  {
    DISC_TRACE_SCOPE("outer", "test");
    {
      DISC_TRACE_SCOPE("inner", "test");
    }
  }
  s.Disable();
  EXPECT_EQ(s.num_events(), 2u);
  std::string json = DumpJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, NestedSpanIsContainedInParent) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  s.AddCompleteEvent("parent", "test", 10.0, 100.0, TraceSession::kWallPid, 0);
  s.AddCompleteEvent("child", "test", 20.0, 30.0, TraceSession::kWallPid, 0);
  s.Disable();
  // Chrome's renderer nests child under parent iff the child's interval is
  // contained; verify the export preserves the explicit timestamps.
  std::string json = DumpJson();
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":30"), std::string::npos) << json;
}

TEST_F(TraceTest, ScopeArgsAndSpecialCharactersAreEscaped) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  {
    TraceScope scope(std::string("na\"me\\with\nnasties"), "test");
    ASSERT_TRUE(scope.active());
    scope.AddArg("shape", "4x\t128");
  }
  s.Disable();
  std::string json = DumpJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("na\\\"me\\\\with\\nnasties"), std::string::npos)
      << json;
  EXPECT_NE(json.find("4x\\t128"), std::string::npos) << json;
}

TEST_F(TraceTest, InstantEventsUsePhaseI) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  s.AddInstantEvent("tick", "test");
  s.Disable();
  EXPECT_EQ(s.num_events(), 1u);
  std::string json = DumpJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
}

TEST_F(TraceTest, RingBufferDropsOldestAndCounts) {
  TraceSession& s = TraceSession::Global();
  s.set_capacity(4);
  s.Enable();
  for (int i = 0; i < 10; ++i) {
    s.AddCompleteEvent("e" + std::to_string(i), "test",
                       static_cast<double>(i), 1.0, TraceSession::kWallPid, 0);
  }
  s.Disable();
  EXPECT_EQ(s.num_events(), 4u);
  EXPECT_EQ(s.dropped_events(), 6);
  std::string json = DumpJson();
  // Oldest (e0..e5) dropped; newest four survive in order.
  EXPECT_EQ(json.find("\"e5\""), std::string::npos);
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("\"e" + std::to_string(i) + "\""), std::string::npos)
        << json;
  }
  EXPECT_LT(json.find("\"e6\""), json.find("\"e9\""));
}

TEST_F(TraceTest, SimulatedClockEventsKeepTheirPidAndTimes) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  s.AddCompleteEvent("request", "serving.request", 1234.5, 100.25,
                     TraceSession::kSimPid, 3,
                     {{"id", "7"}, {"seq_len", "64"}});
  s.Disable();
  std::string json = DumpJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1234.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":100.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":\"7\""), std::string::npos) << json;
}

TEST_F(TraceTest, ConcurrentSpansFromFourThreads) {
  TraceSession& s = TraceSession::Global();
  s.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceScope scope("t" + std::to_string(t), "test.concurrent");
        scope.AddArg("i", std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  s.Disable();
  EXPECT_EQ(s.num_events(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(s.dropped_events(), 0);
  std::string json = DumpJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  // Every thread's spans made it through intact.
  for (int t = 0; t < kThreads; ++t) {
    std::string needle = "\"t" + std::to_string(t) + "\"";
    size_t count = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++count;
    }
    EXPECT_EQ(count, static_cast<size_t>(kSpansPerThread)) << needle;
  }
}

TEST_F(TraceTest, ThreadIdsAreDensePerThread) {
  TraceSession& s = TraceSession::Global();
  int main_tid = s.CurrentThreadTid();
  EXPECT_EQ(main_tid, s.CurrentThreadTid());  // stable for the same thread
  int other_tid = -1;
  std::thread t([&] { other_tid = s.CurrentThreadTid(); });
  t.join();
  EXPECT_NE(other_tid, -1);
  EXPECT_NE(other_tid, main_tid);
}

TEST_F(TraceTest, ClearResetsEventsAndDropCounter) {
  TraceSession& s = TraceSession::Global();
  s.set_capacity(2);
  s.Enable();
  for (int i = 0; i < 5; ++i) s.AddInstantEvent("x", "test");
  EXPECT_GT(s.dropped_events(), 0);
  s.Clear();
  EXPECT_EQ(s.num_events(), 0u);
  EXPECT_EQ(s.dropped_events(), 0);
  EXPECT_TRUE(s.enabled());  // Clear leaves the enabled flag alone
  s.Disable();
}

TEST_F(TraceTest, WriteJsonToFileReportsBadPath) {
  Status bad = TraceSession::Global().WriteJson(
      "/nonexistent-dir-for-trace-test/out.json");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace disc
