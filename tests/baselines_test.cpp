#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "baselines/dynamic_engine.h"
#include "baselines/interpreter_engine.h"
#include "baselines/static_engine.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace disc {
namespace {

// A small dynamic model: matmul + bias + gelu + softmax.
std::unique_ptr<Graph> SmallModel() {
  auto g = std::make_unique<Graph>("small");
  GraphBuilder b(g.get());
  Rng rng(5);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Tensor w(DType::kF32, {16, 16});
  for (int i = 0; i < 256; ++i) w.f32_data()[i] = rng.Normal(0, 0.2f);
  Value* h = b.Gelu(b.MatMul(x, b.Constant(w)));
  b.Output({b.Softmax(h)});
  return g;
}

std::vector<std::vector<std::string>> SmallLabels() { return {{"B", ""}}; }

TEST(BaselinesTest, FactoryMakesAllEight) {
  for (const std::string& name : AllBaselineNames()) {
    auto engine = MakeBaseline(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_EQ((*engine)->name(), name);
  }
  EXPECT_FALSE(MakeBaseline("NotASystem").ok());
}

TEST(BaselinesTest, QueryBeforePrepareFails) {
  auto engine = MakeBaseline("PyTorch");
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->Query({{4, 16}}, DeviceSpec::T4()).ok());
}

TEST(BaselinesTest, AllEnginesAnswerQueries) {
  auto model = SmallModel();
  for (const std::string& name : AllBaselineNames()) {
    auto engine = MakeBaseline(name);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(*model, SmallLabels()).ok()) << name;
    for (int64_t batch : {1, 4, 9, 32}) {
      auto timing = (*engine)->Query({{batch, 16}}, DeviceSpec::A10());
      ASSERT_TRUE(timing.ok()) << name << " batch " << batch << ": "
                               << timing.status().ToString();
      EXPECT_GT(timing->total_us, 0.0) << name;
      EXPECT_GT(timing->kernel_launches, 0) << name;
    }
  }
}

TEST(BaselinesTest, EagerPaysPerOpOverhead) {
  auto model = SmallModel();
  auto eager = MakeBaseline("PyTorch");
  auto disc = MakeBaseline("DISC");
  ASSERT_TRUE(eager.ok() && disc.ok());
  ASSERT_TRUE((*eager)->Prepare(*model, SmallLabels()).ok());
  ASSERT_TRUE((*disc)->Prepare(*model, SmallLabels()).ok());
  auto te = (*eager)->Query({{4, 16}}, DeviceSpec::T4());
  auto td = (*disc)->Query({{4, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(te.ok() && td.ok());
  // Small-shape inference: eager is dominated by host overhead + launches.
  EXPECT_GT(te->host_us, td->host_us);
  EXPECT_GT(te->kernel_launches, td->kernel_launches);
  EXPECT_GT(te->total_us, td->total_us);
}

TEST(InterpreterTest, PointwiseFuserReducesUnits) {
  Graph g("chain");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 32});
  Value* v = x;
  for (int i = 0; i < 5; ++i) v = b.Tanh(b.Add(v, b.ScalarF32(0.1f)));
  b.Output({v});

  InterpreterEngine eager(InterpreterProfile::PyTorch());
  InterpreterEngine script(InterpreterProfile::TorchScript());
  ASSERT_TRUE(eager.Prepare(g, {{"B", ""}}).ok());
  ASSERT_TRUE(script.Prepare(g, {{"B", ""}}).ok());
  EXPECT_EQ(eager.num_device_units(), 10);
  EXPECT_EQ(script.num_device_units(), 1);

  auto te = eager.Query({{16, 32}}, DeviceSpec::T4());
  auto ts = script.Query({{16, 32}}, DeviceSpec::T4());
  ASSERT_TRUE(te.ok() && ts.ok());
  EXPECT_GT(te->kernel_launches, ts->kernel_launches);
  EXPECT_GT(te->total_us, ts->total_us);
}

TEST(InterpreterTest, CompositeMatcherFindsSoftmax) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Value* sm = b.Softmax(x);
  b.Output({sm});
  auto members = MatchSoftmax(sm->producer());
  ASSERT_EQ(members.size(), 5u);
  EXPECT_EQ(members.back(), sm->producer());
}

TEST(InterpreterTest, CompositeMatcherFindsLayerNormAndGelu) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Value* ln = b.LayerNorm(x, b.Constant(Tensor::F32({64}, std::vector<float>(64, 1))),
                          b.Constant(Tensor::F32({64}, std::vector<float>(64, 0))));
  Value* gelu = b.Gelu(x);
  b.Output({ln, gelu});
  EXPECT_EQ(MatchLayerNorm(ln->producer()).size(), 9u);
  EXPECT_EQ(MatchGelu(gelu->producer()).size(), 9u);
  // Non-matching roots return empty.
  EXPECT_TRUE(MatchSoftmax(ln->producer()).empty());
  EXPECT_TRUE(MatchLayerNorm(gelu->producer()).empty());
}

TEST(InterpreterTest, VendorCompositesReduceLaunches) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  b.Output({b.Softmax(x)});
  InterpreterEngine plain(InterpreterProfile::PyTorch());
  InterpreterEngine ort(InterpreterProfile::OnnxRuntime());
  ASSERT_TRUE(plain.Prepare(g, {{"B", ""}}).ok());
  ASSERT_TRUE(ort.Prepare(g, {{"B", ""}}).ok());
  EXPECT_EQ(plain.num_device_units(), 5);  // rmax, sub, exp, rsum, div
  EXPECT_EQ(ort.num_device_units(), 1);    // one vendor softmax
}

TEST(StaticEngineTest, CachesPerShapeAndChargesCompileOnce) {
  auto model = SmallModel();
  StaticCompilerEngine xla(StaticProfile::Xla());
  ASSERT_TRUE(xla.Prepare(*model, SmallLabels()).ok());

  auto first = xla.Query({{4, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->compile_us, 0.0);
  EXPECT_EQ(xla.cache_size(), 1);

  auto second = xla.Query({{4, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->compile_us, 0.0);  // cache hit
  EXPECT_EQ(xla.cache_size(), 1);

  auto third = xla.Query({{5, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->compile_us, 0.0);  // new shape -> recompile
  EXPECT_EQ(xla.cache_size(), 2);
  EXPECT_EQ(xla.stats().compilations, 2);
}

TEST(StaticEngineTest, BucketingCompilesPerBucketWithPaddingWaste) {
  auto model = SmallModel();
  StaticCompilerEngine trt(StaticProfile::TensorRt());
  ASSERT_TRUE(trt.Prepare(*model, SmallLabels()).ok());

  // 5, 6, 7 all land in the 8-bucket: one compilation, padded execution.
  for (int64_t batch : {5, 6, 7}) {
    auto timing = trt.Query({{batch, 16}}, DeviceSpec::T4());
    ASSERT_TRUE(timing.ok());
    if (batch > 5) {
      EXPECT_EQ(timing->compile_us, 0.0);
    }
    EXPECT_GT(timing->padded_waste_bytes, 0) << "batch " << batch;
  }
  EXPECT_EQ(trt.cache_size(), 1);
  // Exact bucket boundary: no waste.
  auto exact = trt.Query({{8, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->padded_waste_bytes, 0);
}

TEST(StaticEngineTest, TvmCompileStallIsLargest) {
  auto model = SmallModel();
  StaticCompilerEngine xla(StaticProfile::Xla());
  StaticCompilerEngine tvm(StaticProfile::Tvm());
  ASSERT_TRUE(xla.Prepare(*model, SmallLabels()).ok());
  ASSERT_TRUE(tvm.Prepare(*model, SmallLabels()).ok());
  auto tx = xla.Query({{4, 16}}, DeviceSpec::T4());
  auto tt = tvm.Query({{4, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(tx.ok() && tt.ok());
  EXPECT_GT(tt->compile_us, tx->compile_us);
  // On its coarse bucket grid TVM pays padding for off-grid shapes...
  auto tt_pad = tvm.Query({{4, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(tt_pad.ok());
  EXPECT_GT(tt_pad->padded_waste_bytes, 0);
  // ...but on an exact bucket its tuned kernels match XLA-grade kernels.
  auto tx2 = xla.Query({{64, 16}}, DeviceSpec::T4());
  auto tt2 = tvm.Query({{64, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(tx2.ok() && tt2.ok());
  EXPECT_LE(tt2->device_us, tx2->device_us * 1.05);
}

TEST(DynamicEngineTest, DiscCompilesOnceForAllShapes) {
  auto model = SmallModel();
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  ASSERT_TRUE(engine.Prepare(*model, SmallLabels()).ok());
  EXPECT_EQ(engine.stats().compilations, 1);
  for (int64_t batch : {1, 3, 17, 64, 5}) {
    ASSERT_TRUE(engine.Query({{batch, 16}}, DeviceSpec::A10()).ok());
  }
  EXPECT_EQ(engine.stats().compilations, 1);  // never recompiles
}

TEST(DynamicEngineTest, InductorPaysGuardOverhead) {
  auto model = SmallModel();
  DynamicCompilerEngine disc(DynamicProfile::Disc());
  DynamicCompilerEngine inductor(DynamicProfile::TorchInductorDynamic());
  ASSERT_TRUE(disc.Prepare(*model, SmallLabels()).ok());
  ASSERT_TRUE(inductor.Prepare(*model, SmallLabels()).ok());
  auto td = disc.Query({{4, 16}}, DeviceSpec::A10());
  auto ti = inductor.Query({{4, 16}}, DeviceSpec::A10());
  ASSERT_TRUE(td.ok() && ti.ok());
  EXPECT_GT(ti->host_us, td->host_us);
  EXPECT_GT(ti->total_us, td->total_us);
}

TEST(DynamicEngineTest, ExecuteMatchesReferenceEvaluator) {
  auto model = SmallModel();
  DynamicCompilerEngine disc(DynamicProfile::Disc());
  auto reference = MakeBaseline("PyTorch");
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(disc.Prepare(*model, SmallLabels()).ok());
  ASSERT_TRUE((*reference)->Prepare(*model, SmallLabels()).ok());

  Rng rng(13);
  Tensor in(DType::kF32, {6, 16});
  for (int i = 0; i < 96; ++i) in.f32_data()[i] = rng.Normal();
  auto got = disc.Execute({in});
  auto want = (*reference)->Execute({in});
  ASSERT_TRUE(got.ok() && want.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_TRUE(Tensor::AllClose((*got)[0], (*want)[0]));
}

TEST(BaselinesTest, A10IsFasterThanT4) {
  auto model = SmallModel();
  auto disc = MakeBaseline("DISC");
  ASSERT_TRUE(disc.ok());
  ASSERT_TRUE((*disc)->Prepare(*model, SmallLabels()).ok());
  auto a10 = (*disc)->Query({{512, 16}}, DeviceSpec::A10());
  auto t4 = (*disc)->Query({{512, 16}}, DeviceSpec::T4());
  ASSERT_TRUE(a10.ok() && t4.ok());
  EXPECT_LT(a10->device_us, t4->device_us);
}

}  // namespace
}  // namespace disc
