#include "kernel/kernel.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "kernel/library.h"

namespace disc {
namespace {

struct Compiled {
  Graph graph;
  std::unique_ptr<ShapeAnalysis> analysis;
  FusionPlan plan;
  std::vector<std::unique_ptr<FusedKernel>> kernels;
};

// Builds a graph, runs analysis + fusion, compiles every group.
std::unique_ptr<Compiled> CompileKernels(
    const std::function<void(GraphBuilder*)>& build,
    std::vector<std::vector<std::string>> labels,
    SpecializeOptions options = {}) {
  auto c = std::make_unique<Compiled>();
  GraphBuilder b(&c->graph);
  build(&b);
  c->analysis = std::make_unique<ShapeAnalysis>(&c->graph, std::move(labels));
  EXPECT_TRUE(c->analysis->Run().ok());
  FusionPlanner planner(&c->graph, c->analysis.get());
  auto plan = planner.Plan();
  EXPECT_TRUE(plan.ok());
  c->plan = std::move(plan).value();
  for (const FusionGroup& group : c->plan.groups) {
    c->kernels.push_back(
        std::make_unique<FusedKernel>(group, c->analysis.get(), options));
  }
  return c;
}

TEST(GuardTest, PredicateKinds) {
  SymbolicDimManager m;
  SymbolId s = m.NewSymbol();
  DimExpr e = DimExpr::Symbol(s);
  SymbolBindings bindings = {{s, 12}};

  DimPredicate div{DimPredicate::Kind::kDivisibleBy, e, 4};
  DimPredicate le{DimPredicate::Kind::kLessEqual, e, 10};
  DimPredicate ge{DimPredicate::Kind::kGreaterEqual, e, 10};
  DimPredicate eq{DimPredicate::Kind::kEqual, e, 12};
  EXPECT_TRUE(*div.Evaluate(bindings));
  EXPECT_FALSE(*le.Evaluate(bindings));
  EXPECT_TRUE(*ge.Evaluate(bindings));
  EXPECT_TRUE(*eq.Evaluate(bindings));
}

TEST(GuardTest, UnboundSymbolErrors) {
  DimPredicate p{DimPredicate::Kind::kEqual, DimExpr::Symbol(3), 1};
  EXPECT_FALSE(p.Evaluate({}).ok());
}

TEST(GuardTest, ConjunctionAndEmptyGuard) {
  SymbolicDimManager m;
  SymbolId s = m.NewSymbol();
  DimExpr e = DimExpr::Symbol(s);
  Guard guard;
  EXPECT_TRUE(guard.always_true());
  EXPECT_TRUE(*guard.Evaluate({}));
  guard.predicates.push_back({DimPredicate::Kind::kGreaterEqual, e, 2});
  guard.predicates.push_back({DimPredicate::Kind::kLessEqual, e, 8});
  EXPECT_TRUE(*guard.Evaluate({{s, 5}}));
  EXPECT_FALSE(*guard.Evaluate({{s, 1}}));
  EXPECT_FALSE(*guard.Evaluate({{s, 9}}));
  EXPECT_NE(guard.ToString().find("&&"), std::string::npos);
}

TEST(KernelTest, LoopKernelHasVecAndGenericVariants) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Relu(b->Add(x, x))});
      },
      {{"B", "S"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  const FusedKernel& kernel = *c->kernels[0];
  ASSERT_EQ(kernel.variants().size(), 2u);
  EXPECT_EQ(kernel.variants()[0].name, "vec4");
  EXPECT_EQ(kernel.variants()[1].name, "generic");
  EXPECT_TRUE(kernel.variants()[1].guard.always_true());
  // Both variants are broadcast-free: all shapes provably equal.
  EXPECT_TRUE(kernel.variants()[0].broadcast_free);
  EXPECT_TRUE(kernel.variants()[1].broadcast_free);
}

TEST(KernelTest, ProvenDivisibilityDropsTheGuard) {
  // Innermost static 128 and a dynamic batch: total = 128*B, divisible by
  // 4 regardless of B -> vectorized variant has no runtime guard.
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 128});
        b->Output({b->Exp(x)});
      },
      {{"B", ""}});
  ASSERT_EQ(c->kernels.size(), 1u);
  EXPECT_EQ(c->kernels[0]->variants()[0].name, "vec4");
  EXPECT_TRUE(c->kernels[0]->variants()[0].guard.always_true());
}

TEST(KernelTest, UnprovenDivisibilityKeepsGuard) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim});
        b->Output({b->Exp(x)});
      },
      {{"N"}});
  const KernelVariant& vec = c->kernels[0]->variants()[0];
  ASSERT_EQ(vec.name, "vec4");
  EXPECT_FALSE(vec.guard.always_true());
  // Dispatch: 8 elements -> vec4; 7 -> generic.
  auto bindings8 = c->analysis->BindInputs({{8}});
  auto bindings7 = c->analysis->BindInputs({{7}});
  ASSERT_TRUE(bindings8.ok() && bindings7.ok());
  EXPECT_EQ((*c->kernels[0]->SelectVariant(*bindings8))->name, "vec4");
  EXPECT_EQ((*c->kernels[0]->SelectVariant(*bindings7))->name, "generic");
}

TEST(KernelTest, BroadcastInGroupDisablesBroadcastFree) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 64});
        Value* bias = b->Input("bias", DType::kF32, {64});
        b->Output({b->Relu(b->Add(x, bias))});
      },
      {{"B", ""}, {""}});
  ASSERT_EQ(c->kernels.size(), 1u);
  for (const KernelVariant& variant : c->kernels[0]->variants()) {
    EXPECT_FALSE(variant.broadcast_free) << variant.ToString();
  }
}

TEST(KernelTest, NoSpecializationLeavesOnlyGeneric) {
  SpecializeOptions options;
  options.enable_specialization = false;
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 128});
        b->Output({b->Exp(x)});
      },
      {{"B", ""}}, options);
  ASSERT_EQ(c->kernels[0]->variants().size(), 1u);
  EXPECT_EQ(c->kernels[0]->variants()[0].name, "generic");
}

TEST(KernelTest, ReduceKernelSchedulesAndRowExprs) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->ReduceSum(x, {1})});
      },
      {{"B", "S"}});
  const FusedKernel& kernel = *c->kernels[0];
  EXPECT_TRUE(kernel.row_extent().valid());
  EXPECT_TRUE(kernel.row_count().valid());
  ASSERT_EQ(kernel.variants().size(), 2u);
  EXPECT_EQ(kernel.variants()[0].schedule, ReduceSchedule::kWarpPerRow);
  EXPECT_EQ(kernel.variants()[1].schedule, ReduceSchedule::kBlockPerRow);

  // Row 64 with 4096 rows -> warp; 4096-long rows -> block; 64 rows -> block.
  auto warp = c->analysis->BindInputs({{4096, 64}});
  auto long_rows = c->analysis->BindInputs({{4096, 4096}});
  auto few_rows = c->analysis->BindInputs({{64, 64}});
  EXPECT_EQ((*kernel.SelectVariant(*warp))->schedule,
            ReduceSchedule::kWarpPerRow);
  EXPECT_EQ((*kernel.SelectVariant(*long_rows))->schedule,
            ReduceSchedule::kBlockPerRow);
  EXPECT_EQ((*kernel.SelectVariant(*few_rows))->schedule,
            ReduceSchedule::kBlockPerRow);
}

TEST(KernelTest, StatsScaleWithShape) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Relu(b->Add(x, x))});
      },
      {{"B", "S"}});
  const FusedKernel& kernel = *c->kernels[0];
  auto small = c->analysis->BindInputs({{8, 8}});
  auto large = c->analysis->BindInputs({{64, 64}});
  auto stats_small =
      kernel.ComputeStats(*small, *kernel.SelectVariant(*small).value());
  auto stats_large =
      kernel.ComputeStats(*large, *kernel.SelectVariant(*large).value());
  ASSERT_TRUE(stats_small.ok() && stats_large.ok());
  EXPECT_EQ(stats_large->bytes_read, stats_small->bytes_read * 64);
  EXPECT_EQ(stats_large->bytes_written, stats_small->bytes_written * 64);
  EXPECT_EQ(stats_large->flops, stats_small->flops * 64);
  EXPECT_GE(stats_large->num_blocks, stats_small->num_blocks);
}

TEST(KernelTest, StitchKernelChargesSharedMemory) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Softmax(x)});
      },
      {{"B", "S"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  EXPECT_EQ(c->kernels[0]->kind(), FusionKind::kStitch);
  auto bindings = c->analysis->BindInputs({{128, 256}});
  auto stats = c->kernels[0]->ComputeStats(
      *bindings, *c->kernels[0]->SelectVariant(*bindings).value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shared_mem_bytes, 256 * 4 * 2);
  // Only input and output hit global memory.
  EXPECT_EQ(stats->bytes_read, 128 * 256 * 4);
  EXPECT_EQ(stats->bytes_written, 128 * 256 * 4);
}

TEST(KernelTest, MultiOutputKernelWritesBothOutputs) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim});
        Value* e = b->Exp(x);
        Value* r = b->Relu(e);
        b->Output({e, r});
      },
      {{"N"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  auto bindings = c->analysis->BindInputs({{100}});
  auto stats = c->kernels[0]->ComputeStats(
      *bindings, *c->kernels[0]->SelectVariant(*bindings).value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->bytes_written, 2 * 100 * 4);
}

TEST(KernelTest, OpFlopCosts) {
  EXPECT_EQ(OpFlopCost(OpKind::kAdd), 1);
  EXPECT_EQ(OpFlopCost(OpKind::kExp), 8);
  EXPECT_EQ(OpFlopCost(OpKind::kDiv), 4);
  EXPECT_EQ(OpFlopCost(OpKind::kTranspose), 0);
  EXPECT_EQ(OpFlopCost(OpKind::kGather), 0);
}

TEST(LibraryTest, MatMulStats) {
  Graph g;
  GraphBuilder b(&g);
  Value* a = b.Input("a", DType::kF32, {kDynamicDim, 64});
  Value* w = b.Input("w", DType::kF32, {64, 32});
  Value* y = b.MatMul(a, w);
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"B", ""}, {}});
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{16, 64}, {64, 32}});
  ASSERT_TRUE(bindings.ok());
  auto stats = ComputeLibraryStats(*y->producer(), analysis, *bindings);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->flops, 2 * 16 * 32 * 64);
  EXPECT_EQ(stats->bytes_read, (16 * 64 + 64 * 32) * 4);
  EXPECT_EQ(stats->bytes_written, 16 * 32 * 4);
}

TEST(LibraryTest, Conv2DStats) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 8, kDynamicDim, 3});
  Value* w = b.Input("w", DType::kF32, {3, 3, 3, 16});
  Value* y = b.Conv2D(x, w, {1, 1}, {1, 1});
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"", "", "W", ""}, {}});
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{1, 8, 10, 3}, {3, 3, 3, 16}});
  ASSERT_TRUE(bindings.ok());
  auto stats = ComputeLibraryStats(*y->producer(), analysis, *bindings);
  ASSERT_TRUE(stats.ok());
  // out = [1, 8, 10, 16]; flops = 2 * out * 3*3*3.
  EXPECT_EQ(stats->flops, 2 * (8 * 10 * 16) * 27);
}

TEST(LibraryTest, NonLibraryOpRejected) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Relu(x);
  b.Output({y});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{4}});
  EXPECT_FALSE(
      ComputeLibraryStats(*y->producer(), analysis, *bindings).ok());
  EXPECT_TRUE(IsLibraryOp(OpKind::kMatMul));
  EXPECT_FALSE(IsLibraryOp(OpKind::kRelu));
}

}  // namespace
}  // namespace disc
