#include "kernel/kernel.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "kernel/library.h"

namespace disc {
namespace {

struct Compiled {
  Graph graph;
  std::unique_ptr<ShapeAnalysis> analysis;
  FusionPlan plan;
  std::vector<std::unique_ptr<FusedKernel>> kernels;
};

// Builds a graph, runs analysis + fusion, compiles every group.
std::unique_ptr<Compiled> CompileKernels(
    const std::function<void(GraphBuilder*)>& build,
    std::vector<std::vector<std::string>> labels,
    SpecializeOptions options = {}) {
  auto c = std::make_unique<Compiled>();
  GraphBuilder b(&c->graph);
  build(&b);
  c->analysis = std::make_unique<ShapeAnalysis>(&c->graph, std::move(labels));
  EXPECT_TRUE(c->analysis->Run().ok());
  FusionPlanner planner(&c->graph, c->analysis.get());
  auto plan = planner.Plan();
  EXPECT_TRUE(plan.ok());
  c->plan = std::move(plan).value();
  for (const FusionGroup& group : c->plan.groups) {
    c->kernels.push_back(
        std::make_unique<FusedKernel>(group, c->analysis.get(), options));
  }
  return c;
}

TEST(GuardTest, PredicateKinds) {
  SymbolicDimManager m;
  SymbolId s = m.NewSymbol();
  DimExpr e = DimExpr::Symbol(s);
  SymbolBindings bindings = {{s, 12}};

  DimPredicate div{DimPredicate::Kind::kDivisibleBy, e, 4};
  DimPredicate le{DimPredicate::Kind::kLessEqual, e, 10};
  DimPredicate ge{DimPredicate::Kind::kGreaterEqual, e, 10};
  DimPredicate eq{DimPredicate::Kind::kEqual, e, 12};
  EXPECT_TRUE(*div.Evaluate(bindings));
  EXPECT_FALSE(*le.Evaluate(bindings));
  EXPECT_TRUE(*ge.Evaluate(bindings));
  EXPECT_TRUE(*eq.Evaluate(bindings));
}

TEST(GuardTest, UnboundSymbolErrors) {
  DimPredicate p{DimPredicate::Kind::kEqual, DimExpr::Symbol(3), 1};
  EXPECT_FALSE(p.Evaluate({}).ok());
}

TEST(GuardTest, ConjunctionAndEmptyGuard) {
  SymbolicDimManager m;
  SymbolId s = m.NewSymbol();
  DimExpr e = DimExpr::Symbol(s);
  Guard guard;
  EXPECT_TRUE(guard.always_true());
  EXPECT_TRUE(*guard.Evaluate({}));
  guard.predicates.push_back({DimPredicate::Kind::kGreaterEqual, e, 2});
  guard.predicates.push_back({DimPredicate::Kind::kLessEqual, e, 8});
  EXPECT_TRUE(*guard.Evaluate({{s, 5}}));
  EXPECT_FALSE(*guard.Evaluate({{s, 1}}));
  EXPECT_FALSE(*guard.Evaluate({{s, 9}}));
  EXPECT_NE(guard.ToString().find("&&"), std::string::npos);
}

TEST(KernelTest, LoopKernelHasVecAndGenericVariants) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Relu(b->Add(x, x))});
      },
      {{"B", "S"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  const FusedKernel& kernel = *c->kernels[0];
  ASSERT_EQ(kernel.variants().size(), 2u);
  EXPECT_EQ(kernel.variants()[0].name, "vec4");
  EXPECT_EQ(kernel.variants()[1].name, "generic");
  EXPECT_TRUE(kernel.variants()[1].guard.always_true());
  // Both variants are broadcast-free: all shapes provably equal.
  EXPECT_TRUE(kernel.variants()[0].broadcast_free);
  EXPECT_TRUE(kernel.variants()[1].broadcast_free);
}

TEST(KernelTest, ProvenDivisibilityDropsTheGuard) {
  // Innermost static 128 and a dynamic batch: total = 128*B, divisible by
  // 4 regardless of B -> vectorized variant has no runtime guard.
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 128});
        b->Output({b->Exp(x)});
      },
      {{"B", ""}});
  ASSERT_EQ(c->kernels.size(), 1u);
  EXPECT_EQ(c->kernels[0]->variants()[0].name, "vec4");
  EXPECT_TRUE(c->kernels[0]->variants()[0].guard.always_true());
}

TEST(KernelTest, UnprovenDivisibilityKeepsGuard) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim});
        b->Output({b->Exp(x)});
      },
      {{"N"}});
  const KernelVariant& vec = c->kernels[0]->variants()[0];
  ASSERT_EQ(vec.name, "vec4");
  EXPECT_FALSE(vec.guard.always_true());
  // Dispatch: 8 elements -> vec4; 7 -> generic.
  auto bindings8 = c->analysis->BindInputs({{8}});
  auto bindings7 = c->analysis->BindInputs({{7}});
  ASSERT_TRUE(bindings8.ok() && bindings7.ok());
  EXPECT_EQ((*c->kernels[0]->SelectVariant(*bindings8))->name, "vec4");
  EXPECT_EQ((*c->kernels[0]->SelectVariant(*bindings7))->name, "generic");
}

TEST(KernelTest, BroadcastInGroupDisablesBroadcastFree) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 64});
        Value* bias = b->Input("bias", DType::kF32, {64});
        b->Output({b->Relu(b->Add(x, bias))});
      },
      {{"B", ""}, {""}});
  ASSERT_EQ(c->kernels.size(), 1u);
  for (const KernelVariant& variant : c->kernels[0]->variants()) {
    EXPECT_FALSE(variant.broadcast_free) << variant.ToString();
  }
}

TEST(KernelTest, NoSpecializationLeavesOnlyGeneric) {
  SpecializeOptions options;
  options.enable_specialization = false;
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, 128});
        b->Output({b->Exp(x)});
      },
      {{"B", ""}}, options);
  ASSERT_EQ(c->kernels[0]->variants().size(), 1u);
  EXPECT_EQ(c->kernels[0]->variants()[0].name, "generic");
}

// Compiles a 1-D elementwise kernel after seeding a likely value for its
// dynamic dim, so the variant list is exact_<domain> -> vec4 -> generic.
std::unique_ptr<Compiled> CompileSpeculativeExpKernel(int64_t likely_n) {
  auto c = std::make_unique<Compiled>();
  GraphBuilder b(&c->graph);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({b.Exp(x)});
  c->analysis =
      std::make_unique<ShapeAnalysis>(&c->graph, std::vector<std::vector<std::string>>{{"N"}});
  EXPECT_TRUE(c->analysis->Run().ok());
  const SymShape& shape = c->analysis->GetShape(c->graph.inputs()[0]);
  EXPECT_TRUE(shape[0].IsSymbol());
  c->analysis->manager().AddLikelyValue(shape[0].symbol(), likely_n);
  FusionPlanner planner(&c->graph, c->analysis.get());
  auto plan = planner.Plan();
  EXPECT_TRUE(plan.ok());
  c->plan = std::move(plan).value();
  for (const FusionGroup& group : c->plan.groups) {
    c->kernels.push_back(std::make_unique<FusedKernel>(
        group, c->analysis.get(), SpecializeOptions{}));
  }
  return c;
}

TEST(KernelSelectTest, GuardOrderIsDeterministicFirstAdmittedWins) {
  auto c = CompileSpeculativeExpKernel(64);
  ASSERT_EQ(c->kernels.size(), 1u);
  const FusedKernel& kernel = *c->kernels[0];
  ASSERT_EQ(kernel.variants().size(), 3u);
  EXPECT_EQ(kernel.variants()[0].name, "exact_64");
  EXPECT_EQ(kernel.variants()[1].name, "vec4");
  EXPECT_EQ(kernel.variants()[2].name, "generic");

  // N=64 admits ALL THREE guards (64 == 64, 64 % 4 == 0, unconditional).
  // Selection must resolve the ambiguity by preference order — index 0 —
  // and keep resolving it the same way on every evaluation.
  auto bindings = c->analysis->BindInputs({{64}});
  ASSERT_TRUE(bindings.ok());
  for (const KernelVariant& v : kernel.variants()) {
    EXPECT_TRUE(*v.guard.Evaluate(*bindings)) << v.name;
  }
  for (int i = 0; i < 10; ++i) {
    auto index = kernel.SelectVariantIndex(*bindings);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(*index, 0);
  }
}

TEST(KernelSelectTest, ExactShapeAdmissionAtBoundaryBindings) {
  auto c = CompileSpeculativeExpKernel(64);
  const FusedKernel& kernel = *c->kernels[0];
  // Exactly the speculated shape: the exact variant wins.
  EXPECT_EQ((*kernel.SelectVariant(*c->analysis->BindInputs({{64}})))->name,
            "exact_64");
  // One element off in either direction rejects the equality guard; 60
  // still divides by 4 so the vectorized variant admits it.
  EXPECT_EQ((*kernel.SelectVariant(*c->analysis->BindInputs({{60}})))->name,
            "vec4");
  EXPECT_EQ((*kernel.SelectVariant(*c->analysis->BindInputs({{68}})))->name,
            "vec4");
  // 63 and 65 fail both the equality and divisibility guards.
  EXPECT_EQ((*kernel.SelectVariant(*c->analysis->BindInputs({{63}})))->name,
            "generic");
  EXPECT_EQ((*kernel.SelectVariant(*c->analysis->BindInputs({{65}})))->name,
            "generic");
}

TEST(KernelSelectTest, GenericVariantIsLastAndUnconditional) {
  // Across option combinations, a loop kernel's LAST variant must be the
  // unconditional fallback — SelectVariantIndex relies on it to never
  // fail — and every earlier variant must carry a real guard here (the
  // dim is dynamic with nothing provable, so nothing can be baked in).
  std::vector<SpecializeOptions> combos(4);
  combos[1].enable_specialization = false;
  combos[2].enable_vectorization = false;
  combos[3].max_speculative_variants = 1;
  for (const SpecializeOptions& options : combos) {
    auto c = CompileKernels(
        [](GraphBuilder* b) {
          Value* x = b->Input("x", DType::kF32, {kDynamicDim});
          b->Output({b->Exp(x)});
        },
        {{"N"}}, options);
    ASSERT_EQ(c->kernels.size(), 1u);
    const auto& variants = c->kernels[0]->variants();
    ASSERT_FALSE(variants.empty());
    EXPECT_EQ(variants.back().name, "generic");
    EXPECT_TRUE(variants.back().guard.always_true());
    for (size_t i = 0; i + 1 < variants.size(); ++i) {
      EXPECT_FALSE(variants[i].guard.always_true()) << variants[i].name;
    }
    // The fallback admits a shape every other guard rejects (prime 7).
    auto bindings = c->analysis->BindInputs({{7}});
    ASSERT_TRUE(bindings.ok());
    auto index = c->kernels[0]->SelectVariantIndex(*bindings);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(*index, static_cast<int>(variants.size()) - 1);
  }
}

TEST(KernelTest, VariantsUnderBuildsCounterfactualWithoutMutating) {
  SpecializeOptions nospec;
  nospec.enable_specialization = false;
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim});
        b->Output({b->Exp(x)});
      },
      {{"N"}}, nospec);
  const FusedKernel& kernel = *c->kernels[0];
  ASSERT_EQ(kernel.variants().size(), 1u);  // generic only

  // The counterfactual under full specialization has the vec4 variant the
  // compiled kernel was denied; the compiled kernel itself is untouched.
  std::vector<KernelVariant> reference = kernel.VariantsUnder({});
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(reference[0].name, "vec4");
  EXPECT_EQ(reference[1].name, "generic");
  EXPECT_EQ(kernel.variants().size(), 1u);
  EXPECT_EQ(kernel.variants()[0].name, "generic");

  // Counterfactual variants are valid ComputeStats inputs: 4 lanes per
  // thread means the vectorized variant launches a quarter of the blocks.
  auto bindings = c->analysis->BindInputs({{4096}});
  ASSERT_TRUE(bindings.ok());
  auto vec_stats = kernel.ComputeStats(*bindings, reference[0]);
  auto gen_stats = kernel.ComputeStats(*bindings, kernel.variants()[0]);
  ASSERT_TRUE(vec_stats.ok() && gen_stats.ok());
  EXPECT_LT(vec_stats->num_blocks, gen_stats->num_blocks);
}

TEST(KernelTest, ReduceKernelSchedulesAndRowExprs) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->ReduceSum(x, {1})});
      },
      {{"B", "S"}});
  const FusedKernel& kernel = *c->kernels[0];
  EXPECT_TRUE(kernel.row_extent().valid());
  EXPECT_TRUE(kernel.row_count().valid());
  ASSERT_EQ(kernel.variants().size(), 2u);
  EXPECT_EQ(kernel.variants()[0].schedule, ReduceSchedule::kWarpPerRow);
  EXPECT_EQ(kernel.variants()[1].schedule, ReduceSchedule::kBlockPerRow);

  // Row 64 with 4096 rows -> warp; 4096-long rows -> block; 64 rows -> block.
  auto warp = c->analysis->BindInputs({{4096, 64}});
  auto long_rows = c->analysis->BindInputs({{4096, 4096}});
  auto few_rows = c->analysis->BindInputs({{64, 64}});
  EXPECT_EQ((*kernel.SelectVariant(*warp))->schedule,
            ReduceSchedule::kWarpPerRow);
  EXPECT_EQ((*kernel.SelectVariant(*long_rows))->schedule,
            ReduceSchedule::kBlockPerRow);
  EXPECT_EQ((*kernel.SelectVariant(*few_rows))->schedule,
            ReduceSchedule::kBlockPerRow);
}

TEST(KernelTest, StatsScaleWithShape) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Relu(b->Add(x, x))});
      },
      {{"B", "S"}});
  const FusedKernel& kernel = *c->kernels[0];
  auto small = c->analysis->BindInputs({{8, 8}});
  auto large = c->analysis->BindInputs({{64, 64}});
  auto stats_small =
      kernel.ComputeStats(*small, *kernel.SelectVariant(*small).value());
  auto stats_large =
      kernel.ComputeStats(*large, *kernel.SelectVariant(*large).value());
  ASSERT_TRUE(stats_small.ok() && stats_large.ok());
  EXPECT_EQ(stats_large->bytes_read, stats_small->bytes_read * 64);
  EXPECT_EQ(stats_large->bytes_written, stats_small->bytes_written * 64);
  EXPECT_EQ(stats_large->flops, stats_small->flops * 64);
  EXPECT_GE(stats_large->num_blocks, stats_small->num_blocks);
}

TEST(KernelTest, StitchKernelChargesSharedMemory) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
        b->Output({b->Softmax(x)});
      },
      {{"B", "S"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  EXPECT_EQ(c->kernels[0]->kind(), FusionKind::kStitch);
  auto bindings = c->analysis->BindInputs({{128, 256}});
  auto stats = c->kernels[0]->ComputeStats(
      *bindings, *c->kernels[0]->SelectVariant(*bindings).value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shared_mem_bytes, 256 * 4 * 2);
  // Only input and output hit global memory.
  EXPECT_EQ(stats->bytes_read, 128 * 256 * 4);
  EXPECT_EQ(stats->bytes_written, 128 * 256 * 4);
}

TEST(KernelTest, MultiOutputKernelWritesBothOutputs) {
  auto c = CompileKernels(
      [](GraphBuilder* b) {
        Value* x = b->Input("x", DType::kF32, {kDynamicDim});
        Value* e = b->Exp(x);
        Value* r = b->Relu(e);
        b->Output({e, r});
      },
      {{"N"}});
  ASSERT_EQ(c->kernels.size(), 1u);
  auto bindings = c->analysis->BindInputs({{100}});
  auto stats = c->kernels[0]->ComputeStats(
      *bindings, *c->kernels[0]->SelectVariant(*bindings).value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->bytes_written, 2 * 100 * 4);
}

TEST(KernelTest, OpFlopCosts) {
  EXPECT_EQ(OpFlopCost(OpKind::kAdd), 1);
  EXPECT_EQ(OpFlopCost(OpKind::kExp), 8);
  EXPECT_EQ(OpFlopCost(OpKind::kDiv), 4);
  EXPECT_EQ(OpFlopCost(OpKind::kTranspose), 0);
  EXPECT_EQ(OpFlopCost(OpKind::kGather), 0);
}

TEST(LibraryTest, MatMulStats) {
  Graph g;
  GraphBuilder b(&g);
  Value* a = b.Input("a", DType::kF32, {kDynamicDim, 64});
  Value* w = b.Input("w", DType::kF32, {64, 32});
  Value* y = b.MatMul(a, w);
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"B", ""}, {}});
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{16, 64}, {64, 32}});
  ASSERT_TRUE(bindings.ok());
  auto stats = ComputeLibraryStats(*y->producer(), analysis, *bindings);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->flops, 2 * 16 * 32 * 64);
  EXPECT_EQ(stats->bytes_read, (16 * 64 + 64 * 32) * 4);
  EXPECT_EQ(stats->bytes_written, 16 * 32 * 4);
}

TEST(LibraryTest, Conv2DStats) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 8, kDynamicDim, 3});
  Value* w = b.Input("w", DType::kF32, {3, 3, 3, 16});
  Value* y = b.Conv2D(x, w, {1, 1}, {1, 1});
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"", "", "W", ""}, {}});
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{1, 8, 10, 3}, {3, 3, 3, 16}});
  ASSERT_TRUE(bindings.ok());
  auto stats = ComputeLibraryStats(*y->producer(), analysis, *bindings);
  ASSERT_TRUE(stats.ok());
  // out = [1, 8, 10, 16]; flops = 2 * out * 3*3*3.
  EXPECT_EQ(stats->flops, 2 * (8 * 10 * 16) * 27);
}

TEST(LibraryTest, NonLibraryOpRejected) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Relu(x);
  b.Output({y});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{4}});
  EXPECT_FALSE(
      ComputeLibraryStats(*y->producer(), analysis, *bindings).ok());
  EXPECT_TRUE(IsLibraryOp(OpKind::kMatMul));
  EXPECT_FALSE(IsLibraryOp(OpKind::kRelu));
}

}  // namespace
}  // namespace disc
