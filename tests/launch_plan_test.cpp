// Launch-plan cache: hit/miss accounting, LRU bounds, observational
// equivalence of cached runs (bit-identical outputs, identical simulated
// device time), host-result replay, and concurrent Run safety.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/launch_plan.h"
#include "support/rng.h"

namespace disc {
namespace {

Tensor RandomF32(Rng* rng, std::vector<int64_t> dims) {
  Tensor t(DType::kF32, std::move(dims));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.f32_data()[i] = rng->Normal();
  }
  return t;
}

// Exact equality — cached replay must be bit-identical, not just close.
bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.dtype() != b.dtype() || a.dims() != b.dims()) return false;
  if (a.dtype() == DType::kF32) {
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      if (a.f32_data()[i] != b.f32_data()[i]) return false;
    }
    return true;
  }
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    if (a.i64_data()[i] != b.i64_data()[i]) return false;
  }
  return true;
}

// A model with every step kind: host shape program (Dim/Cast), a library
// call (MatMul), and fused kernels with specialization guards.
std::unique_ptr<Executable> CompileModel() {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 32});
  Tensor w(DType::kF32, {32, 32});
  Rng rng(7);
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal() * 0.1f;
  }
  Value* y = b.MatMul(x, b.Constant(w));
  Value* total = b.ReduceSum(y, {1});                // [B]
  Value* len = b.Cast(b.Dim(x, 0), DType::kF32);     // host shape value
  b.Output({b.Softmax(b.Relu(y)), b.Div(total, len), b.ShapeOf(x)});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  EXPECT_TRUE(exe.ok()) << exe.status().ToString();
  return std::move(*exe);
}

TEST(ShapeSignatureTest, CanonicalAndCollisionFree) {
  EXPECT_EQ(ShapeSignature({{2, 3}, {4, 5}}), "2x3;4x5;");
  EXPECT_EQ(ShapeSignature({}), "");
  EXPECT_EQ(ShapeSignature({{}}), ";");  // rank-0
  // Rank boundaries must not collide: [2,3],[4] vs [2],[3,4].
  EXPECT_NE(ShapeSignature({{2, 3}, {4}}), ShapeSignature({{2}, {3, 4}}));
}

TEST(LaunchPlanCacheTest, LruEvictsBeyondCapacity) {
  LaunchPlanCache cache(8);
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(std::to_string(i), std::make_shared<const LaunchPlan>());
  }
  LaunchPlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 8);
  EXPECT_EQ(stats.insertions, 1000);
  EXPECT_EQ(stats.evictions, 992);
  // Most-recent 8 survive; older keys are gone.
  EXPECT_NE(cache.Lookup("999"), nullptr);
  EXPECT_NE(cache.Lookup("992"), nullptr);
  EXPECT_EQ(cache.Lookup("991"), nullptr);
  EXPECT_EQ(cache.Lookup("0"), nullptr);
}

TEST(LaunchPlanCacheTest, LookupRefreshesRecency) {
  LaunchPlanCache cache(2);
  cache.Insert("a", std::make_shared<const LaunchPlan>());
  cache.Insert("b", std::make_shared<const LaunchPlan>());
  ASSERT_NE(cache.Lookup("a"), nullptr);  // bump "a" to front
  cache.Insert("c", std::make_shared<const LaunchPlan>());
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);  // "b" was LRU
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(LaunchPlanCacheTest, ZeroCapacityDisables) {
  LaunchPlanCache cache(0);
  cache.Insert("a", std::make_shared<const LaunchPlan>());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(LaunchPlanTest, HitMissAccounting) {
  auto exe = CompileModel();
  auto miss = exe->RunWithShapes({{8, 32}});
  auto hit = exe->RunWithShapes({{8, 32}});
  auto other = exe->RunWithShapes({{16, 32}});
  ASSERT_TRUE(miss.ok() && hit.ok() && other.ok());
  EXPECT_FALSE(miss->profile.launch_plan_hit);
  EXPECT_TRUE(hit->profile.launch_plan_hit);
  EXPECT_FALSE(other->profile.launch_plan_hit);
  LaunchPlanCache::Stats stats = exe->plan_cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 2);
  // ToString surfaces the plan outcome for log scraping.
  EXPECT_NE(hit->profile.ToString().find("plan=hit"), std::string::npos);
  EXPECT_NE(miss->profile.ToString().find("plan=miss"), std::string::npos);
}

TEST(LaunchPlanTest, OptOutNeverTouchesTheCache) {
  auto exe = CompileModel();
  RunOptions off;
  off.use_launch_plan_cache = false;
  ASSERT_TRUE(exe->RunWithShapes({{8, 32}}, off).ok());
  ASSERT_TRUE(exe->RunWithShapes({{8, 32}}, off).ok());
  LaunchPlanCache::Stats stats = exe->plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0);
  EXPECT_EQ(stats.entries, 0);
}

TEST(LaunchPlanTest, CachedRunsAreBitIdenticalOverRandomTrace) {
  // Two executables of the same model: one serves a repeat-heavy random
  // trace through its plan cache, the other runs every query cold. Outputs
  // must match bit-for-bit and simulated device time exactly.
  auto cached = CompileModel();
  auto cold = CompileModel();
  RunOptions with_cache;
  RunOptions no_cache;
  no_cache.use_launch_plan_cache = false;

  Rng rng(11);
  const std::vector<int64_t> batches = {1, 2, 5, 8};
  for (int i = 0; i < 32; ++i) {
    int64_t batch = batches[rng.Categorical({1, 1, 1, 1})];
    Tensor in = RandomF32(&rng, {batch, 32});
    auto a = cached->Run({in}, with_cache);
    auto b = cold->Run({in}, no_cache);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->outputs.size(), b->outputs.size());
    for (size_t o = 0; o < a->outputs.size(); ++o) {
      EXPECT_TRUE(BitIdentical(a->outputs[o], b->outputs[o]))
          << "output " << o << " diverged at query " << i;
    }
    EXPECT_DOUBLE_EQ(a->profile.device_time_us, b->profile.device_time_us);
    EXPECT_EQ(a->profile.kernel_launches, b->profile.kernel_launches);
    EXPECT_EQ(a->profile.bytes_read, b->profile.bytes_read);
    EXPECT_EQ(a->profile.peak_memory_bytes, b->profile.peak_memory_bytes);
  }
  EXPECT_GT(cached->plan_cache_stats().hits, 0);
}

TEST(LaunchPlanTest, HostResultsReplayCorrectlyOnHits) {
  // The graph's 2nd/3rd outputs come from the host shape program; a plan
  // hit replays recorded host tensors, which must still be correct and
  // must be fresh copies (mutating a returned output must not poison the
  // cache for the next hit).
  auto exe = CompileModel();
  Rng rng(13);
  Tensor in = RandomF32(&rng, {4, 32});
  auto first = exe->Run({in});
  ASSERT_TRUE(first.ok());
  auto second = exe->Run({in});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->profile.launch_plan_hit);
  EXPECT_TRUE(BitIdentical(first->outputs[2], second->outputs[2]));
  EXPECT_EQ(second->outputs[2].i64_data()[0], 4);  // ShapeOf(x)[0] == B
  // Corrupt the returned tensor; a further hit must be unaffected.
  second->outputs[2].i64_data()[0] = -1;
  auto third = exe->Run({in});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->outputs[2].i64_data()[0], 4);
}

TEST(LaunchPlanTest, TimingOnlyPlanUpgradesForDataRuns) {
  // A plan recorded by a timing-only run has no host results; the first
  // data-mode hit must still produce correct outputs (and upgrade the
  // cached plan in place rather than duplicating the entry).
  auto exe = CompileModel();
  ASSERT_TRUE(exe->RunWithShapes({{4, 32}}).ok());
  Rng rng(17);
  Tensor in = RandomF32(&rng, {4, 32});
  auto data = exe->Run({in});
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->profile.launch_plan_hit);
  EXPECT_EQ(data->outputs[2].i64_data()[0], 4);
  EXPECT_EQ(exe->plan_cache_stats().entries, 1);
  auto again = exe->Run({in});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->outputs[2].i64_data()[0], 4);
}

TEST(LaunchPlanTest, CapacityBoundRespectedThroughExecutable) {
  auto exe = CompileModel();
  exe->set_plan_cache_capacity(8);
  for (int64_t batch = 1; batch <= 1000; ++batch) {
    ASSERT_TRUE(exe->RunWithShapes({{batch, 32}}).ok());
  }
  LaunchPlanCache::Stats stats = exe->plan_cache_stats();
  EXPECT_LE(stats.entries, 8);
  EXPECT_EQ(stats.misses, 1000);  // adversarial trace: all distinct
  EXPECT_EQ(stats.evictions, 992);
}

TEST(LaunchPlanTest, ConcurrentRunsAreSafe) {
  // 4 threads hammer one Executable with overlapping signatures; every run
  // must succeed and every hit must produce the correct output shape.
  auto exe = CompileModel();
  std::atomic<int> failures{0};
  auto worker = [&](int seed) {
    Rng rng(seed);
    const std::vector<int64_t> batches = {1, 2, 3, 4};
    for (int i = 0; i < 50; ++i) {
      int64_t batch = batches[rng.Categorical({1, 1, 1, 1})];
      Tensor in = RandomF32(&rng, {batch, 32});
      auto r = exe->Run({in});
      if (!r.ok() || r->outputs[2].i64_data()[0] != batch) ++failures;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, 100 + t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  LaunchPlanCache::Stats stats = exe->plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 200);
  EXPECT_LE(stats.entries, 4);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace disc
