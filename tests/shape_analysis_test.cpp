#include "shape/shape_analysis.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace disc {
namespace {

TEST(ShapeAnalysisTest, SeedsInputsWithLabels) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 64});
  b.Output({x, y});

  ShapeAnalysis analysis(&g, {{"B", "S", ""}, {"B", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  // Shared label "B" -> same symbol on both inputs.
  EXPECT_TRUE(analysis.IsDimEqual(x, 0, y, 0));
  // Static dim is a constant.
  EXPECT_TRUE(analysis.GetShape(x)[2].IsConstValue(64));
  // Unlabelled dynamic dims are distinct.
  EXPECT_FALSE(analysis.IsDimEqual(x, 1, y, 0));
}

TEST(ShapeAnalysisTest, ElementwisePreservesShape) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Relu(b.Exp(x));
  b.Output({y});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsShapeEqual(x, y));
}

TEST(ShapeAnalysisTest, BinaryUnifiesDynamicDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 8});
  Value* z = b.Add(x, y);
  b.Output({z});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  // The add forces the two anonymous batch dims to be equal — excavated.
  EXPECT_TRUE(analysis.IsDimEqual(x, 0, y, 0));
  EXPECT_TRUE(analysis.IsShapeEqual(x, z));
}

TEST(ShapeAnalysisTest, SymbolMeetingConstantBecomesConstant) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 128});
  Value* z = b.Add(x, y);
  b.Output({z});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  // x's second dim must equal 128 at runtime.
  DimExpr d = analysis.manager().Canonicalize(analysis.GetShape(x)[1]);
  EXPECT_TRUE(d.IsConstValue(128));
}

TEST(ShapeAnalysisTest, ScalarBroadcastKeepsShape) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Mul(x, b.ScalarF32(2.0f));
  b.Output({y});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsShapeEqual(x, y));
}

TEST(ShapeAnalysisTest, ReduceDropsAndKeepsDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* dropped = b.ReduceSum(x, {2});
  Value* kept = b.ReduceMax(x, {2}, /*keep=*/true);
  b.Output({dropped, kept});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_EQ(analysis.GetShape(dropped).size(), 2u);
  EXPECT_TRUE(analysis.IsDimEqual(dropped, 0, x, 0));
  EXPECT_TRUE(analysis.IsDimEqual(dropped, 1, x, 1));
  ASSERT_EQ(analysis.GetShape(kept).size(), 3u);
  EXPECT_TRUE(analysis.GetShape(kept)[2].IsConstValue(1));
}

TEST(ShapeAnalysisTest, MatMulUnifiesContraction) {
  Graph g;
  GraphBuilder b(&g);
  Value* a = b.Input("a", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* w = b.Input("w", DType::kF32, {kDynamicDim, 32});
  Value* y = b.MatMul(a, w);
  b.Output({y});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  // a.dim1 == w.dim0 excavated from the contraction.
  EXPECT_TRUE(analysis.IsDimEqual(a, 1, w, 0));
  EXPECT_TRUE(analysis.IsDimEqual(y, 0, a, 0));
  EXPECT_TRUE(analysis.GetShape(y)[1].IsConstValue(32));
}

TEST(ShapeAnalysisTest, ReshapeFlattenProducesProduct) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* flat = b.Reshape(x, {-1, 64});
  b.Output({flat});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  const SymShape& in = analysis.GetShape(x);
  const SymShape& out = analysis.GetShape(flat);
  // flat.dim0 == B * S, recovered by symbolic division.
  EXPECT_TRUE(analysis.manager().IsDimEqual(out[0],
                                            DimExpr::Mul(in[0], in[1])));
  EXPECT_TRUE(analysis.IsSameNumElements(x, flat));
}

TEST(ShapeAnalysisTest, ReshapeRoundTripSameElements) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* flat = b.Reshape(x, {-1, 64});
  Value* act = b.Relu(flat);
  Value* shape = b.ShapeOf(x);
  Value* back = b.ReshapeDynamic(act, shape);
  b.Output({back});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  // Contents of shape_of(x) are x's dims, so `back` has x's exact shape.
  EXPECT_TRUE(analysis.IsShapeEqual(x, back));
  EXPECT_TRUE(analysis.IsSameNumElements(act, back));
}

TEST(ShapeAnalysisTest, ShapeOfContentTracked) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 32});
  Value* shape = b.ShapeOf(x);
  b.Output({shape});
  ShapeAnalysis analysis(&g, {{"B", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  const auto* content = analysis.GetContent(shape);
  ASSERT_NE(content, nullptr);
  ASSERT_EQ(content->size(), 2u);
  EXPECT_TRUE((*content)[0].Equals(analysis.GetShape(x)[0]));
  EXPECT_TRUE((*content)[1].IsConstValue(32));
}

TEST(ShapeAnalysisTest, DimAndConcatShapeArithmetic) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  // target = [B*S, 64] computed in-graph from dims.
  Value* bdim = b.Dim(x, 0);
  Value* sdim = b.Dim(x, 1);
  Value* flat_len = b.Mul(bdim, sdim);
  Value* shape = b.Concat({b.Reshape(flat_len, {1}),
                           b.Constant(Tensor::I64({1}, {64}))},
                          0);
  Value* out = b.ReshapeDynamic(x, shape);
  b.Output({out});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  const SymShape& in = analysis.GetShape(x);
  const SymShape& result = analysis.GetShape(out);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_TRUE(
      analysis.manager().IsDimEqual(result[0], DimExpr::Mul(in[0], in[1])));
  EXPECT_TRUE(result[1].IsConstValue(64));
}

TEST(ShapeAnalysisTest, ConcatAxisIsSum) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 8});
  Value* cat = b.Concat({x, y}, 0);
  b.Output({cat});
  ShapeAnalysis analysis(&g, {{"M", ""}, {"N", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  DimExpr expected = DimExpr::Add(analysis.GetShape(x)[0],
                                  analysis.GetShape(y)[0]);
  EXPECT_TRUE(analysis.manager().IsDimEqual(analysis.GetShape(cat)[0],
                                            expected));
}

TEST(ShapeAnalysisTest, SliceFullDimPreservesSymbol) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* s = b.Slice(x, {0, 2}, {-1, 6}, {1, 1});
  b.Output({s});
  ShapeAnalysis analysis(&g, {{"B", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(s, 0, x, 0));
  EXPECT_TRUE(analysis.GetShape(s)[1].IsConstValue(4));
}

TEST(ShapeAnalysisTest, TransposePermutesSymbols) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* t = b.Transpose(x, {1, 0, 2});
  b.Output({t});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(t, 0, x, 1));
  EXPECT_TRUE(analysis.IsDimEqual(t, 1, x, 0));
}

TEST(ShapeAnalysisTest, GatherShapesFromIndices) {
  Graph g;
  GraphBuilder b(&g);
  Value* table = b.Input("table", DType::kF32, {1000, 64});
  Value* ids = b.Input("ids", DType::kI64, {kDynamicDim});
  Value* emb = b.Gather(table, ids, 0);
  b.Output({emb});
  ShapeAnalysis analysis(&g, {{}, {"N"}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(emb, 0, ids, 0));
  EXPECT_TRUE(analysis.GetShape(emb)[1].IsConstValue(64));
}

TEST(ShapeAnalysisTest, BindInputsSolvesSymbols) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* flat = b.Reshape(x, {-1, 64});
  b.Output({flat});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());

  auto bindings = analysis.BindInputs({{4, 17, 64}});
  ASSERT_TRUE(bindings.ok());
  auto dims = analysis.EvaluateShape(flat, *bindings);
  ASSERT_TRUE(dims.ok());
  EXPECT_EQ(*dims, (std::vector<int64_t>{4 * 17, 64}));
}

TEST(ShapeAnalysisTest, BindInputsRejectsStaticMismatch) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  b.Output({b.Relu(x)});
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_FALSE(analysis.BindInputs({{4, 32}}).ok());
  EXPECT_FALSE(analysis.BindInputs({{4}}).ok());
  EXPECT_FALSE(analysis.BindInputs({}).ok());
}

TEST(ShapeAnalysisTest, BindInputsRejectsInconsistentSharedSymbol) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 8});
  b.Output({b.Add(x, y)});  // forces equal batch dims
  ShapeAnalysis analysis(&g);
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.BindInputs({{4, 8}, {4, 8}}).ok());
  EXPECT_FALSE(analysis.BindInputs({{4, 8}, {5, 8}}).ok());
}

TEST(ShapeAnalysisTest, EvaluateConvOutputDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 32, kDynamicDim, 3});
  Value* w = b.Constant(Tensor(DType::kF32, {3, 3, 3, 8}));
  Value* y = b.Conv2D(x, w, {2, 2}, {1, 1});
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"", "", "W", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  auto bindings = analysis.BindInputs({{1, 32, 100, 3}});
  ASSERT_TRUE(bindings.ok());
  auto dims = analysis.EvaluateShape(y, *bindings);
  ASSERT_TRUE(dims.ok());
  // (100 + 2 - 3) / 2 + 1 = 50; (32 + 2 - 3)/2 + 1 = 16.
  EXPECT_EQ(*dims, (std::vector<int64_t>{1, 16, 50, 8}));
}

TEST(ShapeAnalysisTest, MatMulTransposeFlagsPickRightDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* a = b.Input("a", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* w = b.Input("w", DType::kF32, {kDynamicDim, kDynamicDim});
  // a^T @ w^T: m = a.dim1, n = w.dim0, contraction a.dim0 == w.dim1.
  Value* y = b.MatMul(a, w, /*transpose_a=*/true, /*transpose_b=*/true);
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"M", "K"}, {"N", "K2"}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(y, 0, a, 1));
  EXPECT_TRUE(analysis.IsDimEqual(y, 1, w, 0));
  EXPECT_TRUE(analysis.IsDimEqual(a, 0, w, 1));  // excavated contraction
}

TEST(ShapeAnalysisTest, ContentArithmeticDivAndNested) {
  // target = [(B*S)/4, 4, C]: shape arithmetic with division.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 8});
  Value* flat_len = b.Mul(b.Dim(x, 0), b.Dim(x, 1));
  Value* quarter = b.Div(flat_len, b.ScalarI64(4));
  Value* shape = b.Concat({b.Reshape(quarter, {1}),
                           b.Constant(Tensor::I64({2}, {4, 8}))},
                          0);
  Value* y = b.ReshapeDynamic(x, shape);
  b.Output({y});
  ShapeAnalysis analysis(&g, {{"B", "S", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  const SymShape& out = analysis.GetShape(y);
  ASSERT_EQ(out.size(), 3u);
  // dim 0 = floordiv(B*S, 4), evaluable.
  auto bindings = analysis.BindInputs({{4, 6, 8}});
  ASSERT_TRUE(bindings.ok());
  auto dims = analysis.EvaluateShape(y, *bindings);
  ASSERT_TRUE(dims.ok());
  EXPECT_EQ(*dims, (std::vector<int64_t>{6, 4, 8}));
}

TEST(ShapeAnalysisTest, ConvChannelMismatchExcavated) {
  // Conv with a dynamic channel input: channel must equal the filter's.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {1, 8, 8, kDynamicDim});
  Value* w = b.Input("w", DType::kF32, {3, 3, kDynamicDim, 16});
  b.Output({b.Conv2D(x, w, {1, 1}, {1, 1})});
  ShapeAnalysis analysis(&g, {{"", "", "", "C1"}, {"", "", "C2", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(g.inputs()[0], 3, g.inputs()[1], 2));
  // Inconsistent runtime channels rejected.
  EXPECT_FALSE(analysis.BindInputs({{1, 8, 8, 3}, {3, 3, 4, 16}}).ok());
}

TEST(ShapeAnalysisTest, PadAddsConstants) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* p = b.Pad(x, {0, 1}, {0, 3});
  b.Output({p});
  ShapeAnalysis analysis(&g, {{"B", ""}});
  ASSERT_TRUE(analysis.Run().ok());
  EXPECT_TRUE(analysis.IsDimEqual(p, 0, x, 0));
  EXPECT_TRUE(analysis.GetShape(p)[1].IsConstValue(12));
}

}  // namespace
}  // namespace disc
