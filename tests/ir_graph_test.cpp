#include "ir/graph.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace disc {
namespace {

TEST(TensorTypeTest, StaticAndDynamic) {
  TensorType t(DType::kF32, {2, kDynamicDim});
  EXPECT_FALSE(t.IsFullyStatic());
  EXPECT_TRUE(t.IsStaticDim(0));
  EXPECT_FALSE(t.IsStaticDim(1));
  EXPECT_EQ(t.ToString(), "f32[2x?]");
  TensorType u(DType::kI64, {3, 4});
  EXPECT_TRUE(u.IsFullyStatic());
  EXPECT_EQ(u.NumElements(), 12);
}

TEST(GraphTest, BuildSimpleChain) {
  Graph g("chain");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 4});
  Value* y = b.Add(x, x);
  Value* z = b.Relu(y);
  b.Output({z});

  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(z->type().ToString(), "f32[?x4]");
  EXPECT_TRUE(g.Verify().ok());
}

TEST(GraphTest, UseListsTracked) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Add(x, x);
  // x used twice by the same node -> two use entries.
  EXPECT_EQ(x->users().size(), 2u);
  EXPECT_EQ(y->users().size(), 0u);
  b.Mul(y, x);
  EXPECT_EQ(x->users().size(), 3u);
  EXPECT_EQ(y->users().size(), 1u);
}

TEST(GraphTest, ReplaceAllUsesWith) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Add(x, x);
  Value* z = b.Relu(y);
  b.Output({z, y});

  Value* y2 = b.Mul(x, x);
  g.ReplaceAllUsesWith(y, y2);
  EXPECT_TRUE(y->users().empty());
  EXPECT_EQ(z->producer()->operand(0), y2);
  EXPECT_EQ(g.outputs()[1], y2);
}

TEST(GraphTest, EraseNodeRules) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Add(x, x);
  Value* z = b.Relu(y);
  b.Output({z});

  // y still used -> cannot erase its producer.
  EXPECT_FALSE(g.EraseNode(y->producer()).ok());
  // z is a graph output -> cannot erase.
  EXPECT_FALSE(g.EraseNode(z->producer()).ok());
  // A fresh unused node can be erased.
  Value* w = b.Exp(x);
  EXPECT_TRUE(g.EraseNode(w->producer()).ok());
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(GraphTest, RemoveDeadNodesSweepsChains) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* keep = b.Relu(x);
  // A dead chain of 3 nodes.
  b.Exp(b.Abs(b.Neg(x)));
  b.Output({keep});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.RemoveDeadNodes(), 3);
  EXPECT_EQ(g.num_nodes(), 1);
}

TEST(GraphTest, TopologicalOrderRespectsDeps) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* a = b.Relu(x);
  Value* c = b.Add(a, b.Exp(a));
  b.Output({c});
  auto order = g.TopologicalOrder();
  std::unordered_map<const Node*, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (Node* n : order) {
    for (Value* operand : n->operands()) {
      if (operand->producer() != nullptr) {
        EXPECT_LT(pos[operand->producer()], pos[n]);
      }
    }
  }
}

TEST(GraphTest, CloneIsIsomorphicAndIndependent) {
  Graph g("orig");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* w = b.Constant(Tensor::F32({8, 8}, std::vector<float>(64, 0.5f)));
  Value* y = b.Relu(b.MatMul(x, w));
  b.Output({y});

  std::unordered_map<const Value*, Value*> map;
  auto clone = g.Clone(&map);
  EXPECT_EQ(clone->num_nodes(), g.num_nodes());
  EXPECT_EQ(clone->inputs().size(), 1u);
  EXPECT_EQ(clone->outputs().size(), 1u);
  EXPECT_EQ(map.at(y)->type(), y->type());
  EXPECT_TRUE(clone->Verify().ok());
  // Mutating the clone leaves the original untouched.
  clone->RemoveDeadNodes();
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(GraphTest, PrinterMentionsOpsAndTypes) {
  Graph g("p");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({b.Relu(x)});
  std::string text = g.ToString();
  EXPECT_NE(text.find("relu"), std::string::npos);
  EXPECT_NE(text.find("f32[?]"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(GraphTest, VerifyCatchesCorruptedType) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Relu(x);
  b.Output({y});
  EXPECT_TRUE(g.Verify().ok());
  // Hand-build a node with a wrong output type via the low-level API.
  g.CreateNode(OpKind::kAbs, {x}, {}, {TensorType(DType::kI64, {4})});
  EXPECT_FALSE(g.Verify().ok());
}

TEST(GraphTest, SetOperandUpdatesUses) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Input("y", DType::kF32, {4});
  Value* sum = b.Add(x, x);
  g.SetOperand(sum->producer(), 1, y);
  EXPECT_EQ(x->users().size(), 1u);
  EXPECT_EQ(y->users().size(), 1u);
  EXPECT_EQ(sum->producer()->operand(1), y);
}

TEST(OpKindTest, NameRoundTrip) {
  for (int i = 0; i < static_cast<int>(OpKind::kNumOps); ++i) {
    OpKind k = static_cast<OpKind>(i);
    EXPECT_EQ(OpKindFromName(OpName(k)), k) << OpName(k);
  }
  EXPECT_EQ(OpKindFromName("definitely_not_an_op"), OpKind::kNumOps);
}

TEST(OpKindTest, Classification) {
  EXPECT_TRUE(IsFusableElementwise(OpKind::kAdd));
  EXPECT_TRUE(IsFusableElementwise(OpKind::kTranspose));
  EXPECT_FALSE(IsFusableElementwise(OpKind::kMatMul));
  EXPECT_FALSE(IsFusableElementwise(OpKind::kReduceSum));
  EXPECT_TRUE(IsReduction(OpKind::kReduceMean));
  EXPECT_TRUE(IsBinaryElementwise(OpKind::kMul));
  EXPECT_FALSE(IsBinaryElementwise(OpKind::kExp));
  EXPECT_TRUE(IsUnaryElementwise(OpKind::kExp));
  EXPECT_TRUE(IsPredicateOp(OpKind::kLess));
  EXPECT_FALSE(IsPredicateOp(OpKind::kAdd));
}

TEST(BuilderTest, CompositeSoftmaxShape) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* sm = b.Softmax(x);
  EXPECT_EQ(sm->type().ToString(), "f32[?x?x64]");
  EXPECT_TRUE(g.Verify().ok());
}

TEST(BuilderTest, CompositeLayerNormShape) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Value* scale = b.Constant(Tensor::F32({16}, std::vector<float>(16, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({16}, std::vector<float>(16, 0.0f)));
  Value* ln = b.LayerNorm(x, scale, bias);
  EXPECT_EQ(ln->type().ToString(), "f32[?x16]");
  EXPECT_TRUE(g.Verify().ok());
}

}  // namespace
}  // namespace disc
