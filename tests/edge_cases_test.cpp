// Edge cases across the whole stack: degenerate graphs, zero-sized runtime
// dims, scalar inputs, duplicate outputs, deep and wide graphs.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/eval.h"

namespace disc {
namespace {

TEST(EdgeCaseTest, InputPassedStraightToOutput) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({x});
  auto exe = DiscCompiler::Compile(g, {{"N"}});
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  auto r = (*exe)->Run({Tensor::F32({2}, {1, 2})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Tensor::AllClose(r->outputs[0], Tensor::F32({2}, {1, 2})));
}

TEST(EdgeCaseTest, ConstantOnlyGraph) {
  Graph g;
  GraphBuilder b(&g);
  b.Output({b.Constant(Tensor::F32({3}, {1, 2, 3}))});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outputs[0].num_elements(), 3);
}

TEST(EdgeCaseTest, DuplicateGraphOutputs) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  Value* y = b.Relu(x);
  b.Output({y, y, y});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::F32({4}, {-1, 0, 1, 2})});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->outputs.size(), 3u);
  for (const Tensor& out : r->outputs) {
    EXPECT_TRUE(Tensor::AllClose(out, Tensor::F32({4}, {0, 0, 1, 2})));
  }
}

TEST(EdgeCaseTest, ZeroSizedRuntimeDim) {
  // Batch 0 is a legal runtime shape: kernels iterate nothing.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 4});
  b.Output({b.Relu(b.Add(x, x))});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor(DType::kF32, {0, 4})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->outputs[0].dims(), (std::vector<int64_t>{0, 4}));
  EXPECT_EQ(r->outputs[0].num_elements(), 0);
}

TEST(EdgeCaseTest, ScalarInputsAndOutputs) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {});
  Value* y = b.Input("y", DType::kF32, {});
  b.Output({b.Mul(b.Add(x, y), x)});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::ScalarF32(3), Tensor::ScalarF32(4)});
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r->outputs[0].f32_data()[0], 21.0f);
}

TEST(EdgeCaseTest, DeepChainCompiles) {
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim});
  for (int i = 0; i < 200; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  auto exe = DiscCompiler::Compile(g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  // max_group_size (64) caps groups -> at least 4 kernels.
  EXPECT_GE((*exe)->report().num_kernels, 4);
  auto r = (*exe)->Run({Tensor::F32({2}, {0.5f, -0.5f})});
  ASSERT_TRUE(r.ok());
  auto want = EvaluateGraph(g, {Tensor::F32({2}, {0.5f, -0.5f})});
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(Tensor::AllClose(r->outputs[0], (*want)[0]));
}

TEST(EdgeCaseTest, WideFanOutFromOneValue) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  std::vector<Value*> branches;
  for (int i = 0; i < 20; ++i) {
    branches.push_back(b.Mul(x, b.ScalarF32(static_cast<float>(i))));
  }
  Value* acc = branches[0];
  for (size_t i = 1; i < branches.size(); ++i) acc = b.Add(acc, branches[i]);
  b.Output({acc});
  auto exe = DiscCompiler::Compile(g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::F32({2}, {1, 2})});
  ASSERT_TRUE(r.ok());
  // sum(i) for i in 0..19 = 190.
  EXPECT_FLOAT_EQ(r->outputs[0].f32_data()[0], 190.0f);
  EXPECT_FLOAT_EQ(r->outputs[0].f32_data()[1], 380.0f);
}

TEST(EdgeCaseTest, ReduceOverAllDims) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.ReduceSum(x, {0, 1})});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::F32({2, 3}, {1, 2, 3, 4, 5, 6})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outputs[0].rank(), 0);
  EXPECT_FLOAT_EQ(r->outputs[0].f32_data()[0], 21.0f);
}

TEST(EdgeCaseTest, DimOfSizeOneBroadcastsBothWays) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 1});
  Value* y = b.Input("y", DType::kF32, {1, kDynamicDim});
  b.Output({b.Add(x, y)});  // outer sum [B, S]
  auto exe = DiscCompiler::Compile(g, {{"B", ""}, {"", "S"}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::F32({2, 1}, {10, 20}),
                        Tensor::F32({1, 3}, {1, 2, 3})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Tensor::AllClose(
      r->outputs[0], Tensor::F32({2, 3}, {11, 12, 13, 21, 22, 23})));
}

TEST(EdgeCaseTest, CompileRejectsMalformedLabelCount) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({b.Relu(x)});
  // Too many label vectors is tolerated (extra ignored); malformed graphs
  // are rejected by Verify inside Compile.
  auto ok = DiscCompiler::Compile(g, {{"N"}, {"EXTRA"}});
  EXPECT_TRUE(ok.ok());
}

TEST(EdgeCaseTest, RunAfterManyShapesKeepsWorking) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());
  for (int64_t n = 1; n <= 40; ++n) {
    ASSERT_TRUE((*exe)->RunWithShapes({{n, 41 - n}}).ok()) << n;
  }
}

}  // namespace
}  // namespace disc
