#include "decode/decode_scheduler.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/dynamic_engine.h"
#include "decode/decode_replay.h"
#include "decode/kv_cache_pool.h"
#include "models/models.h"
#include "runtime/memory_plan.h"
#include "support/json.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// KvCachePool
// ---------------------------------------------------------------------------

TEST(KvCachePoolTest, PlansArenaThroughSymbolicPlanner) {
  KvCachePoolOptions options;
  options.capacity_blocks = 8;
  options.block_tokens = 16;
  options.bytes_per_token = 100;  // deliberately unaligned
  KvCachePool pool(options);
  // Raw block = 1600B; the planner aligns slots to kArenaAlignment.
  EXPECT_EQ(pool.block_bytes() % kArenaAlignment, 0);
  EXPECT_GE(pool.block_bytes(), 1600);
  EXPECT_EQ(pool.arena_bytes(), 8 * pool.block_bytes());
  EXPECT_EQ(pool.free_blocks(), 8);
  EXPECT_FALSE(pool.growth_formula().empty());
}

TEST(KvCachePoolTest, SymbolicGrowthFormulaMatchesBlockQuantization) {
  KvCachePoolOptions options;
  options.block_tokens = 16;
  KvCachePool pool(options);
  // bytes(T) = ceildiv(T, 16) * block_bytes, evaluated symbolically.
  EXPECT_EQ(pool.SequencePeakBytes(1), pool.block_bytes());
  EXPECT_EQ(pool.SequencePeakBytes(16), pool.block_bytes());
  EXPECT_EQ(pool.SequencePeakBytes(17), 2 * pool.block_bytes());
  EXPECT_EQ(pool.SequencePeakBytes(160), 10 * pool.block_bytes());
}

TEST(KvCachePoolTest, ReserveGrowReleaseRecycles) {
  KvCachePoolOptions options;
  options.capacity_blocks = 4;
  options.block_tokens = 8;
  KvCachePool pool(options);

  ASSERT_TRUE(pool.Reserve(/*seq_id=*/1, /*tokens=*/8).ok());
  EXPECT_EQ(pool.blocks_of(1), 1);
  EXPECT_EQ(pool.used_blocks(), 1);
  // Growth inside the block is free; crossing the boundary takes one more.
  ASSERT_TRUE(pool.Grow(1, 8).ok());
  EXPECT_EQ(pool.blocks_of(1), 1);
  ASSERT_TRUE(pool.Grow(1, 9).ok());
  EXPECT_EQ(pool.blocks_of(1), 2);
  EXPECT_EQ(pool.committed_bytes(), 2 * pool.block_bytes());

  // Double-reserve is a caller bug, not pressure.
  EXPECT_EQ(pool.Reserve(1, 8).code(), StatusCode::kInvalidArgument);
  // Exhaustion is ResourceExhausted and counted.
  ASSERT_TRUE(pool.Reserve(2, 16).ok());
  EXPECT_EQ(pool.free_blocks(), 0);
  EXPECT_EQ(pool.Grow(1, 17).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.stats().failed_grants, 1);

  pool.Release(2);
  EXPECT_EQ(pool.free_blocks(), 2);
  EXPECT_EQ(pool.stats().block_recycles, 2);
  ASSERT_TRUE(pool.Grow(1, 17).ok());
  EXPECT_EQ(pool.blocks_of(1), 3);
  EXPECT_EQ(pool.stats().high_water_blocks, 4);
  pool.Release(1);
  EXPECT_EQ(pool.used_blocks(), 0);
}

// ---------------------------------------------------------------------------
// Scheduler (scripted engine for deterministic timing)
// ---------------------------------------------------------------------------

// Cost = fixed overhead + a per-padded-token charge, so smaller/denser
// step batches genuinely finish sooner — the economics continuous batching
// exploits. Optionally rejects any step whose batch exceeds a bound with
// ResourceExhausted (a memory-pressure script for the preemption ladder).
class StepCostEngine : public Engine {
 public:
  explicit StepCostEngine(int64_t reject_batch_above = 0)
      : reject_batch_above_(reject_batch_above) {}

  const std::string& name() const override { return name_; }
  Status Prepare(const Graph&,
                 std::vector<std::vector<std::string>>) override {
    return Status::OK();
  }
  Result<EngineTiming> Query(
      const std::vector<std::vector<int64_t>>& input_dims,
      const DeviceSpec&) override {
    CountQuery();
    const int64_t b = input_dims[1][0];
    const int64_t t = input_dims[1][1];
    if (reject_batch_above_ > 0 && b > reject_batch_above_) {
      return Status::ResourceExhausted("scripted device memory pressure");
    }
    EngineTiming timing;
    timing.device_us = 20.0 + 0.5 * static_cast<double>(b * t);
    timing.host_us = 2.0;
    timing.total_us = timing.device_us + timing.host_us;
    return timing;
  }

 private:
  std::string name_ = "step-cost";
  int64_t reject_batch_above_;
};

std::vector<std::vector<int64_t>> StepShapes(int64_t batch, int64_t kv_len) {
  return {{batch, 1, 8}, {batch, kv_len, 8}, {batch, kv_len, 8},
          {batch, kv_len}};
}

std::vector<DecodeRequest> FixedStream(
    std::vector<std::tuple<double, int64_t, int64_t>> arrival_prompt_decode) {
  std::vector<DecodeRequest> requests;
  int64_t id = 0;
  for (auto [arrival, prompt, decode] : arrival_prompt_decode) {
    DecodeRequest r;
    r.id = id++;
    r.arrival_us = arrival;
    r.prompt_len = prompt;
    r.decode_len = decode;
    requests.push_back(r);
  }
  return requests;
}

TEST(DecodeSchedulerTest, ContinuousCompletesEverySequence) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 4;
  auto requests = FixedStream(
      {{0, 8, 4}, {0, 16, 6}, {50, 8, 2}, {400, 24, 3}, {500, 8, 5}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ServingStats& sv = stats->serving;
  EXPECT_EQ(sv.submitted, 5);
  EXPECT_EQ(sv.completed, 5);
  EXPECT_EQ(sv.failed, 0);
  EXPECT_EQ(sv.generated_tokens, 4 + 6 + 2 + 3 + 5);
  EXPECT_EQ(sv.decode_joins, 5);
  EXPECT_EQ(sv.decode_retires, 5);
  EXPECT_GT(sv.decode_steps, 0);
  EXPECT_GT(sv.tokens_per_sec, 0.0);
  EXPECT_GT(sv.p50_tbt_us, 0.0);
  EXPECT_GE(sv.p99_tbt_us, sv.p50_tbt_us);
  // Ragged lengths padded to the block quantum always waste something,
  // but never everything.
  EXPECT_GT(sv.step_padding_waste, 0.0);
  EXPECT_LT(sv.step_padding_waste, 1.0);
  EXPECT_EQ(static_cast<int64_t>(sv.completed_requests.size()), 5);
  // Sequence lifetimes never overlap-free: per-request ledgers were
  // DISC_CHECKed to sum to e2e inside the simulator; spot-check decode
  // fields surfaced.
  for (const CompletedRequest& r : sv.completed_requests) {
    EXPECT_GT(r.e2e_us, 0.0);
    EXPECT_GE(r.ledger.queue_us, 0.0);
    EXPECT_GT(r.ledger.device_us, 0.0);
  }
}

TEST(DecodeSchedulerTest, StepSignaturesAreBlockQuantized) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 4;
  options.kv.block_tokens = 16;
  auto requests = FixedStream({{0, 5, 40}, {0, 9, 40}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  ASSERT_FALSE(stats->timeline.empty());
  for (const DecodeStepRecord& rec : stats->timeline) {
    EXPECT_EQ(rec.padded_kv % 16, 0) << rec.signature;
  }
  // 2 sequences x 40 tokens at kv growth 1/step crosses the 16-token
  // boundary a few times; the signature set stays tiny (warm plan cache).
  std::vector<std::string> signatures;
  for (const DecodeStepRecord& rec : stats->timeline) {
    if (std::find(signatures.begin(), signatures.end(), rec.signature) ==
        signatures.end()) {
      signatures.push_back(rec.signature);
    }
  }
  EXPECT_LE(static_cast<int64_t>(signatures.size()), 6);
  EXPECT_GT(static_cast<int64_t>(stats->timeline.size()), 20);
}

TEST(DecodeSchedulerTest, ContinuousBeatsWholeRequestOnThroughputAndWaste) {
  // Two bursts. In each, one long sequence holds the whole-request batch
  // open while the short ones finish early and freeze; the second burst
  // then queues behind the drain. Continuous batching retires the short
  // sequences' slots immediately and admits the next burst mid-flight.
  auto requests = FixedStream({{0, 8, 30},
                               {0, 8, 4},
                               {0, 8, 4},
                               {0, 8, 4},
                               {2000, 8, 6},
                               {2000, 8, 6},
                               {2000, 8, 28}});
  DecodeOptions continuous;
  continuous.policy = DecodePolicy::kContinuous;
  continuous.max_batch = 4;
  DecodeOptions whole = continuous;
  whole.policy = DecodePolicy::kWholeRequest;

  StepCostEngine engine_a;
  auto cont = SimulateDecode(&engine_a, StepShapes, requests, continuous,
                             DeviceSpec::T4());
  StepCostEngine engine_b;
  auto wr = SimulateDecode(&engine_b, StepShapes, requests, whole,
                           DeviceSpec::T4());
  ASSERT_TRUE(cont.ok());
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(cont->serving.completed, 7);
  EXPECT_EQ(wr->serving.completed, 7);
  // Whole-request batches are hostage to their longest member: finished
  // short sequences keep burning padded rows, arrivals wait for a full
  // drain. Continuous retires/joins per step.
  EXPECT_GT(cont->serving.tokens_per_sec, wr->serving.tokens_per_sec);
  EXPECT_LT(cont->serving.step_padding_waste,
            wr->serving.step_padding_waste);
  EXPECT_LE(cont->serving.p99_tbt_us, wr->serving.p99_tbt_us);
}

TEST(DecodeSchedulerTest, TinyPoolPreemptsAndStillCompletesEverything) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 4;
  options.kv.capacity_blocks = 6;  // ~3 sequences' worth once grown
  options.kv.block_tokens = 8;
  auto requests =
      FixedStream({{0, 8, 24}, {0, 8, 24}, {0, 8, 24}, {0, 8, 24}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ServingStats& sv = stats->serving;
  // Memory pressure answered by the decode ladder — preempt + resume —
  // never by dropping mid-flight work.
  EXPECT_GT(sv.preemptions, 0);
  EXPECT_GT(sv.resumes, 0);
  EXPECT_EQ(sv.completed, 4);
  EXPECT_EQ(sv.failed, 0);
  EXPECT_EQ(sv.shed, 0);
  EXPECT_GT(sv.kv_block_recycles, 0);
  EXPECT_LE(sv.kv_high_water_blocks, 6);
  // Preempted sequences accumulated out-of-batch time in the new ledger
  // phase (the sum invariant was DISC_CHECKed per request inside).
  double total_decode_wait = 0.0;
  for (const CompletedRequest& r : sv.completed_requests) {
    total_decode_wait += r.ledger.decode_wait_us;
  }
  EXPECT_GT(total_decode_wait, 0.0);
}

TEST(DecodeSchedulerTest, EngineResourceExhaustionTriggersPreemption) {
  // The pool has room, but the *engine* reports memory pressure for any
  // step batch over 2 — the scheduler must shrink via preemption instead
  // of failing the step.
  StepCostEngine engine(/*reject_batch_above=*/2);
  DecodeOptions options;
  options.max_batch = 4;
  options.max_retries = 1;
  auto requests = FixedStream({{0, 8, 6}, {0, 8, 6}, {0, 8, 6}, {0, 8, 6}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ServingStats& sv = stats->serving;
  EXPECT_EQ(sv.completed, 4);
  EXPECT_EQ(sv.failed, 0);
  EXPECT_GT(sv.preemptions, 0);
  for (const DecodeStepRecord& rec : stats->timeline) {
    EXPECT_LE(rec.occupancy, 2) << "step launched over the scripted limit";
  }
}

TEST(DecodeSchedulerTest, OversizedSequenceFailsInsteadOfLivelocking) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 2;
  options.kv.capacity_blocks = 4;
  options.kv.block_tokens = 8;
  // 80-token prompt needs 10 blocks; the pool has 4 even when empty.
  auto requests = FixedStream({{0, 80, 4}, {0, 8, 4}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->serving.failed, 1);
  EXPECT_EQ(stats->serving.completed, 1);
  EXPECT_EQ(stats->serving.error_counts.count("ResourceExhausted"), 1u);
}

TEST(DecodeSchedulerTest, BacklogShedsFreshRequestsOnly) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 1;
  options.max_queue_depth = 2;
  auto requests = FixedStream({{0, 8, 40},
                               {1, 8, 4},
                               {2, 8, 4},
                               {3, 8, 4},
                               {4, 8, 4},
                               {5, 8, 4}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  const ServingStats& sv = stats->serving;
  EXPECT_GT(sv.shed, 0);
  EXPECT_EQ(sv.completed + sv.shed, sv.submitted);
}

TEST(DecodeSchedulerTest, MemoryAwareAdmissionCountsKvFootprint) {
  StepCostEngine engine;  // PredictPeakBytes == 0: activations unpriced
  DecodeOptions options;
  options.max_batch = 8;
  options.kv.block_tokens = 8;
  options.kv.bytes_per_token = 512;
  KvCachePool probe(options.kv);
  // Budget: two sequences' worth of committed KV bytes (16-token caches).
  options.memory_limit_bytes = 2 * probe.SequencePeakBytes(16) +
                               probe.block_bytes() / 2;
  auto requests =
      FixedStream({{0, 8, 4}, {0, 8, 4}, {0, 8, 4}, {0, 8, 4}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  // The gate defers joins instead of shedding: occupancy stays bounded,
  // everyone eventually runs.
  EXPECT_EQ(stats->serving.completed, 4);
  for (const DecodeStepRecord& rec : stats->timeline) {
    EXPECT_LE(rec.occupancy, 3);
  }
}

TEST(DecodeSchedulerTest, TimelineJsonIsParseableAndConsistent) {
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 2;
  auto requests = FixedStream({{0, 8, 3}, {10, 8, 5}, {900, 16, 2}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  const std::string text = stats->TimelineJson().SerializePretty();
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* steps = parsed->Find("steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(static_cast<int64_t>(steps->as_array().size()),
            stats->serving.decode_steps);
  const JsonValue* summary = parsed->Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("joins")->as_number(),
            static_cast<double>(stats->serving.decode_joins));
  const JsonValue* kv = parsed->Find("kv_pool");
  ASSERT_NE(kv, nullptr);
  EXPECT_GT(kv->Find("arena_bytes")->as_number(), 0.0);
  EXPECT_FALSE(kv->Find("growth_formula")->as_string().empty());
  // Step-local counters roll up to the replay totals.
  int64_t joins = 0, retires = 0;
  for (const DecodeStepRecord& rec : stats->timeline) {
    joins += rec.joins;
    retires += rec.retires;
  }
  EXPECT_EQ(joins, stats->serving.decode_joins);
  EXPECT_EQ(retires, stats->serving.decode_retires);
}

TEST(DecodeSchedulerTest, TimelineDumpRoundTripsThroughFormatter) {
  // The CLI-facing reader renders the dump text, not the in-memory stats:
  // whatever the scheduler serializes must come back out of the formatter
  // with the headline numbers intact.
  StepCostEngine engine;
  DecodeOptions options;
  options.max_batch = 2;
  auto requests = FixedStream({{0, 8, 3}, {10, 8, 5}, {900, 16, 2}});
  auto stats = SimulateDecode(&engine, StepShapes, requests, options,
                              DeviceSpec::T4());
  ASSERT_TRUE(stats.ok());
  auto rendered =
      FormatDecodeTimelineJson(stats->TimelineJson().SerializePretty());
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered->find("policy=continuous"), std::string::npos);
  EXPECT_NE(rendered->find("submitted=3 completed=3"), std::string::npos);
  EXPECT_NE(rendered->find("kv high-water"), std::string::npos);
  // One table row per step (none elided in a replay this small).
  int64_t join_rows = 0;
  for (size_t pos = rendered->find("join"); pos != std::string::npos;
       pos = rendered->find("join", pos + 1)) {
    ++join_rows;
  }
  EXPECT_GE(join_rows, 2);

  EXPECT_FALSE(FormatDecodeTimelineJson("not json").ok());
  EXPECT_FALSE(FormatDecodeTimelineJson("{\"schema\": \"wrong.v0\"}").ok());
  // A truncated dump (steps array stripped) must fail loudly, not render
  // a half-empty report.
  auto doc = ParseJson(stats->TimelineJson().SerializePretty());
  ASSERT_TRUE(doc.ok());
  doc->as_object().erase("steps");
  EXPECT_FALSE(FormatDecodeTimelineJson(doc->SerializePretty()).ok());
}

TEST(DecodeSchedulerTest, ReplayIsDeterministic) {
  auto requests = SyntheticDecodeStream(/*count=*/24, /*mean_gap_us=*/150.0,
                                        /*seed=*/11);
  DecodeOptions options;
  options.max_batch = 4;
  options.kv.capacity_blocks = 24;
  options.kv.block_tokens = 8;
  StepCostEngine engine_a;
  auto a = SimulateDecode(&engine_a, StepShapes, requests, options,
                          DeviceSpec::T4());
  StepCostEngine engine_b;
  auto b = SimulateDecode(&engine_b, StepShapes, requests, options,
                          DeviceSpec::T4());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->TimelineJson().Serialize(), b->TimelineJson().Serialize());
  // Permutation independence: the same stream in reverse submit order
  // replays identically (trace ids differ; compare the timeline).
  std::vector<DecodeRequest> reversed(requests.rbegin(), requests.rend());
  StepCostEngine engine_c;
  auto c = SimulateDecode(&engine_c, StepShapes, reversed, options,
                          DeviceSpec::T4());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->TimelineJson().Serialize(), c->TimelineJson().Serialize());
}

TEST(DecodeSchedulerTest, PlanCacheStaysWarmAcrossSteps) {
  // Real engine, real model: block-quantized signatures mean the launch
  // plan compiles once per (B, T-bucket) and replays everywhere else.
  ModelConfig config;
  config.hidden = 16;
  config.trace_length = 4;
  Model model = BuildGptStepBatch(config);
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  ASSERT_TRUE(engine.Prepare(*model.graph, model.input_dim_labels).ok());
  DecodeOptions options;
  options.max_batch = 4;
  options.kv.block_tokens = 16;
  auto requests =
      FixedStream({{0, 8, 24}, {0, 12, 24}, {0, 6, 20}, {0, 10, 20}});
  auto stats = SimulateDecode(&engine, GptStepBatchShapeFn(config.hidden),
                              requests, options, DeviceSpec::T4());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->serving.completed, 4);
  EXPECT_GT(stats->serving.plan_hit_rate, 0.5);
}

// ---------------------------------------------------------------------------
// Bit-identity: ragged batched decode == unbatched single-sequence replay
// ---------------------------------------------------------------------------

ModelConfig SmallConfig() {
  ModelConfig config;
  config.hidden = 16;
  config.trace_length = 1;
  return config;
}

TEST(DecodeBitIdentityTest, RaggedPaddedBatchMatchesSingleReplay) {
  const ModelConfig config = SmallConfig();
  std::vector<ReplaySequence> specs = {
      {/*prompt=*/3, /*decode=*/5, /*seed=*/21},
      {/*prompt=*/7, /*decode=*/3, /*seed=*/22},
      {/*prompt=*/12, /*decode=*/4, /*seed=*/23}};
  BatchedDecodeSession session(config, specs);
  // Ragged schedule: 0 and 1 start together, 2 joins at step 2, members
  // retire as they finish — every step padded to the 8-token block grid.
  while (!(session.done(0) && session.done(1) && session.done(2))) {
    std::vector<int64_t> active;
    for (int64_t s = 0; s < 3; ++s) {
      if (s == 2 && session.probs(0).size() < 2) continue;  // late join
      if (!session.done(s)) active.push_back(s);
    }
    ASSERT_TRUE(session.Step(active, /*block_tokens=*/8).ok());
  }
  for (int64_t s = 0; s < 3; ++s) {
    auto reference = ReplaySingleSequence(config, specs[static_cast<size_t>(s)]);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const auto& batched = session.probs(s);
    ASSERT_EQ(batched.size(), reference->size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_TRUE(BitIdentical(batched[i], (*reference)[i]))
          << "seq " << s << " step " << i << " diverged: max|d|="
          << Tensor::MaxAbsDiff(batched[i], (*reference)[i]);
    }
  }
}

TEST(DecodeBitIdentityTest, PreemptResumeRebuildStaysBitIdentical) {
  const ModelConfig config = SmallConfig();
  std::vector<ReplaySequence> specs = {{/*prompt=*/5, /*decode=*/6, 31},
                                       {/*prompt=*/9, /*decode=*/6, 32}};
  BatchedDecodeSession session(config, specs);
  ASSERT_TRUE(session.Step({0, 1}, 8).ok());
  ASSERT_TRUE(session.Step({0, 1}, 8).ok());
  // Preempt seq 1 (cache dropped — the scheduler's memory-pressure move),
  // run seq 0 alone for two steps, then resume seq 1: its cache rebuilds
  // from the token stream before it re-enters the batch.
  session.Preempt(1);
  ASSERT_TRUE(session.Step({0}, 8).ok());
  ASSERT_TRUE(session.Step({0}, 8).ok());
  while (!(session.done(0) && session.done(1))) {
    std::vector<int64_t> active;
    for (int64_t s = 0; s < 2; ++s) {
      if (!session.done(s)) active.push_back(s);
    }
    ASSERT_TRUE(session.Step(active, 8).ok());
  }
  for (int64_t s = 0; s < 2; ++s) {
    auto reference = ReplaySingleSequence(config, specs[static_cast<size_t>(s)]);
    ASSERT_TRUE(reference.ok());
    const auto& batched = session.probs(s);
    ASSERT_EQ(batched.size(), reference->size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_TRUE(BitIdentical(batched[i], (*reference)[i]))
          << "seq " << s << " step " << i << " diverged after preempt";
    }
  }
}

TEST(DecodeBitIdentityTest, PaddingGridDoesNotChangeBits) {
  // The same schedule on the exact grid and on two block grids: identical
  // captured outputs — padding is inert, not merely small.
  const ModelConfig config = SmallConfig();
  const ReplaySequence spec{/*prompt=*/4, /*decode=*/4, /*seed=*/41};
  std::vector<std::vector<Tensor>> runs;
  for (int64_t block : {0, 8, 32}) {
    BatchedDecodeSession session(config, {spec});
    while (!session.done(0)) {
      ASSERT_TRUE(session.Step({0}, block).ok());
    }
    runs.push_back(session.probs(0));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_TRUE(BitIdentical(runs[r][i], runs[0][i]));
    }
  }
}

}  // namespace
}  // namespace disc
