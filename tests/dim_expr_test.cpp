#include "shape/dim_expr.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

DimExpr C(int64_t v) { return DimExpr::Const(v); }
DimExpr S(SymbolId id) { return DimExpr::Symbol(id); }

TEST(DimExprTest, ConstBasics) {
  EXPECT_TRUE(C(4).IsConst());
  EXPECT_EQ(C(4).const_value(), 4);
  EXPECT_TRUE(C(4).IsConstValue(4));
  EXPECT_FALSE(C(4).IsConstValue(5));
  EXPECT_EQ(C(4).ToString(), "4");
}

TEST(DimExprTest, SymbolBasics) {
  EXPECT_TRUE(S(3).IsSymbol());
  EXPECT_EQ(S(3).symbol(), 3);
  EXPECT_EQ(S(3).ToString(), "s3");
}

TEST(DimExprTest, AddFoldsConstants) {
  EXPECT_TRUE(DimExpr::Add(C(2), C(3)).IsConstValue(5));
}

TEST(DimExprTest, AddDropsZero) {
  EXPECT_EQ(DimExpr::Add(S(0), C(0)).ToString(), "s0");
}

TEST(DimExprTest, AddIsCommutativeInNormalForm) {
  DimExpr a = DimExpr::Add(S(0), S(1));
  DimExpr b = DimExpr::Add(S(1), S(0));
  EXPECT_TRUE(a.Equals(b));
}

TEST(DimExprTest, AddCombinesLikeTerms) {
  // s0 + s0 -> 2 * s0
  DimExpr e = DimExpr::Add(S(0), S(0));
  EXPECT_TRUE(e.Equals(DimExpr::Mul(C(2), S(0))));
}

TEST(DimExprTest, AddCancelsTerms) {
  // s0 + (-1 * s0) -> 0
  DimExpr e = DimExpr::Add(S(0), DimExpr::Mul(C(-1), S(0)));
  EXPECT_TRUE(e.IsConstValue(0));
}

TEST(DimExprTest, MulFoldsConstantsAndSorts) {
  DimExpr a = DimExpr::Mul({C(2), S(1), C(3), S(0)});
  DimExpr b = DimExpr::Mul({S(0), C(6), S(1)});
  EXPECT_TRUE(a.Equals(b));
}

TEST(DimExprTest, MulByZero) {
  EXPECT_TRUE(DimExpr::Mul(S(0), C(0)).IsConstValue(0));
}

TEST(DimExprTest, MulByOneIsIdentity) {
  EXPECT_EQ(DimExpr::Mul(S(0), C(1)).ToString(), "s0");
}

TEST(DimExprTest, MulFlattensNesting) {
  DimExpr nested = DimExpr::Mul(DimExpr::Mul(S(0), S(1)), S(2));
  DimExpr flat = DimExpr::Mul({S(0), S(1), S(2)});
  EXPECT_TRUE(nested.Equals(flat));
}

TEST(DimExprTest, FloorDivSimplifications) {
  EXPECT_EQ(DimExpr::FloorDiv(S(0), C(1)).ToString(), "s0");
  EXPECT_TRUE(DimExpr::FloorDiv(C(7), C(2)).IsConstValue(3));
  EXPECT_TRUE(DimExpr::FloorDiv(S(0), S(0)).IsConstValue(1));
  // (6 * s0) / 3 -> 2 * s0
  DimExpr e = DimExpr::FloorDiv(DimExpr::Mul(C(6), S(0)), C(3));
  EXPECT_TRUE(e.Equals(DimExpr::Mul(C(2), S(0))));
}

TEST(DimExprTest, FloorDivCancelsWholeProduct) {
  // (768 * s0 * s1) / 768 -> s0 * s1
  DimExpr numel = DimExpr::Mul({C(768), S(0), S(1)});
  DimExpr e = DimExpr::FloorDiv(numel, C(768));
  EXPECT_TRUE(e.Equals(DimExpr::Mul(S(0), S(1))));
}

TEST(DimExprTest, CeilDivConstants) {
  EXPECT_TRUE(DimExpr::CeilDiv(C(7), C(2)).IsConstValue(4));
  EXPECT_EQ(DimExpr::CeilDiv(S(0), C(1)).ToString(), "s0");
  EXPECT_TRUE(DimExpr::CeilDiv(S(0), S(0)).IsConstValue(1));
}

TEST(DimExprTest, ModSimplifications) {
  EXPECT_TRUE(DimExpr::Mod(S(0), C(1)).IsConstValue(0));
  EXPECT_TRUE(DimExpr::Mod(C(7), C(4)).IsConstValue(3));
  EXPECT_TRUE(DimExpr::Mod(S(0), S(0)).IsConstValue(0));
}

TEST(DimExprTest, CollectSymbolsDeduplicates) {
  DimExpr e = DimExpr::Add(DimExpr::Mul(S(0), S(1)), S(0));
  auto syms = e.CollectSymbols();
  EXPECT_EQ(syms.size(), 2u);
}

TEST(DimExprTest, Evaluate) {
  // (s0 * s1 + 4) with s0=2, s1=3 -> 10
  DimExpr e = DimExpr::Add(DimExpr::Mul(S(0), S(1)), C(4));
  std::unordered_map<SymbolId, int64_t> bindings = {{0, 2}, {1, 3}};
  auto r = e.Evaluate(bindings);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST(DimExprTest, EvaluateUnboundSymbolFails) {
  EXPECT_FALSE(S(5).Evaluate({}).ok());
}

TEST(DimExprTest, EvaluateDivMod) {
  std::unordered_map<SymbolId, int64_t> bindings = {{0, 10}};
  EXPECT_EQ(*DimExpr::FloorDiv(S(0), C(3)).Evaluate(bindings), 3);
  EXPECT_EQ(*DimExpr::CeilDiv(S(0), C(3)).Evaluate(bindings), 4);
  EXPECT_EQ(*DimExpr::Mod(S(0), C(3)).Evaluate(bindings), 1);
}

TEST(DimExprTest, SubstituteRenormalizes) {
  // s0 * s1 with s0 := 4 -> 4 * s1
  DimExpr e = DimExpr::Mul(S(0), S(1));
  DimExpr result = e.Substitute({{0, C(4)}});
  EXPECT_TRUE(result.Equals(DimExpr::Mul(C(4), S(1))));
  // Substituting s1 := s0 into s0 + s1 gives 2*s0.
  DimExpr sum = DimExpr::Add(S(0), S(1));
  EXPECT_TRUE(sum.Substitute({{1, S(0)}}).Equals(DimExpr::Mul(C(2), S(0))));
}

TEST(DimExprTest, ProvablyDivisible) {
  std::unordered_map<SymbolId, int64_t> divisors = {{0, 4}, {1, 1}};
  EXPECT_TRUE(C(8).ProvablyDivisibleBy(4, {}));
  EXPECT_FALSE(C(6).ProvablyDivisibleBy(4, {}));
  EXPECT_TRUE(S(0).ProvablyDivisibleBy(4, divisors));
  EXPECT_TRUE(S(0).ProvablyDivisibleBy(2, divisors));
  EXPECT_FALSE(S(1).ProvablyDivisibleBy(2, divisors));
  // s0 * s1 divisible by 4 via s0.
  EXPECT_TRUE(DimExpr::Mul(S(0), S(1)).ProvablyDivisibleBy(4, divisors));
  // 2 * s1 divisible by 2 via the coefficient.
  EXPECT_TRUE(DimExpr::Mul(C(2), S(1)).ProvablyDivisibleBy(2, divisors));
  // s0 + 2 is NOT provably divisible by 4 (only s0 is).
  EXPECT_FALSE(DimExpr::Add(S(0), C(2)).ProvablyDivisibleBy(4, divisors));
  // s0 + 4 is divisible by 4.
  EXPECT_TRUE(DimExpr::Add(S(0), C(4)).ProvablyDivisibleBy(4, divisors));
}

TEST(DimExprTest, SymShapeHelpers) {
  SymShape shape = {S(0), C(4), S(1)};
  EXPECT_EQ(SymShapeToString(shape), "[s0, 4, s1]");
  DimExpr n = SymShapeNumElements(shape);
  EXPECT_TRUE(n.Equals(DimExpr::Mul({C(4), S(0), S(1)})));
  EXPECT_TRUE(SymShapeNumElements({}).IsConstValue(1));
}

TEST(DimExprTest, NestedDivisionChainsSimplify) {
  // floordiv(floordiv-free path): ((4*s0)/2)/2 -> s0.
  DimExpr e = DimExpr::FloorDiv(
      DimExpr::FloorDiv(DimExpr::Mul(C(4), S(0)), C(2)), C(2));
  EXPECT_EQ(e.ToString(), "s0");
}

TEST(DimExprTest, SubstituteIntoDivision) {
  // floordiv(s0, s1) with s1 := 1 -> s0; with both const -> folded.
  DimExpr e = DimExpr::FloorDiv(S(0), S(1));
  EXPECT_EQ(e.Substitute({{1, C(1)}}).ToString(), "s0");
  EXPECT_TRUE(e.Substitute({{0, C(9)}, {1, C(2)}}).IsConstValue(4));
}

TEST(DimExprTest, EvaluateDivisionByZeroIsError) {
  DimExpr e = DimExpr::FloorDiv(S(0), S(1));
  EXPECT_FALSE(e.Evaluate({{0, 4}, {1, 0}}).ok());
}

TEST(DimExprTest, NegativeConstantsInSums) {
  // (s0 - 3) + 3 -> s0 (via Add with Mul(-1) encoding of Sub).
  DimExpr minus3 = DimExpr::Add(S(0), C(-3));
  EXPECT_EQ(DimExpr::Add(minus3, C(3)).ToString(), "s0");
}

TEST(DimExprTest, LargeProductsStayCanonical) {
  // Product of many symbols renders deterministically sorted.
  DimExpr a = DimExpr::Mul({S(3), S(1), S(2), C(7)});
  DimExpr b = DimExpr::Mul({C(7), S(2), S(3), S(1)});
  EXPECT_TRUE(a.Equals(b));
}

TEST(DimExprTest, HashConsistentWithEquality) {
  DimExpr a = DimExpr::Add(S(0), C(3));
  DimExpr b = DimExpr::Add(C(3), S(0));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace disc
