#include "fusion/fusion.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "ir/builder.h"

namespace disc {
namespace {

struct Planned {
  Graph* graph;
  std::unique_ptr<ShapeAnalysis> analysis;
  FusionPlan plan;
};

FusionPlan PlanFor(Graph* g, FusionOptions options = {},
                   std::vector<std::vector<std::string>> labels = {}) {
  ShapeAnalysis analysis(g, std::move(labels));
  EXPECT_TRUE(analysis.Run().ok());
  FusionPlanner planner(g, &analysis, options);
  auto plan = planner.Plan();
  EXPECT_TRUE(plan.ok());
  return std::move(plan).value();
}

const FusionGroup* GroupContaining(const FusionPlan& plan, const Value* v) {
  auto it = plan.group_of.find(v->producer());
  if (it == plan.group_of.end()) return nullptr;
  return &plan.groups[it->second];
}

TEST(FusionTest, ElementwiseChainFusesIntoOneLoop) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* y = b.Relu(b.Exp(b.Mul(x, x)));
  b.Output({y});

  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, y);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 3);
  EXPECT_EQ(group->kind, FusionKind::kLoop);
  EXPECT_EQ(group->outputs.size(), 1u);
  EXPECT_EQ(group->root, y->producer());
}

TEST(FusionTest, DynamicShapesFuseViaSymbolicEquality) {
  // Two dynamic inputs; the add proves their shapes equal, so the whole
  // chain fuses even though no dim value is known.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* z = b.Tanh(b.Add(x, y));
  b.Output({z});

  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, z);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2);
}

TEST(FusionTest, WithoutSymbolicShapesDynamicChainsStaySplit) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* z = b.Tanh(b.Add(x, x));
  b.Output({z});

  FusionOptions options;
  options.use_symbolic_shapes = false;  // the ablation of experiment F2
  FusionPlan plan = PlanFor(&g, options);
  // Shapes are dynamic -> no static proof -> two singleton groups.
  EXPECT_EQ(plan.GetStats().num_fused_nodes, 0);
  EXPECT_EQ(plan.groups.size(), 2u);
}

TEST(FusionTest, WithoutSymbolicShapesStaticChainsStillFuse) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {8, 128});
  Value* z = b.Tanh(b.Add(x, x));
  b.Output({z});

  FusionOptions options;
  options.use_symbolic_shapes = false;
  FusionPlan plan = PlanFor(&g, options);
  EXPECT_EQ(plan.GetStats().num_fused_nodes, 2);
}

TEST(FusionTest, FusionDisabledMakesSingletons) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {4});
  b.Output({b.Relu(b.Exp(x))});
  FusionOptions options;
  options.enable_fusion = false;
  FusionPlan plan = PlanFor(&g, options);
  EXPECT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.GetStats().num_singleton_groups, 2);
}

TEST(FusionTest, BroadcastProducerFuses) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 128});
  Value* bias = b.Input("bias", DType::kF32, {128});
  Value* y = b.Relu(b.Add(x, bias));
  b.Output({y});
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, y);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2);
  // bias is an input of the fused kernel.
  EXPECT_NE(std::find(group->inputs.begin(), group->inputs.end(), bias),
            group->inputs.end());
}

TEST(FusionTest, LibraryOpsAreBarriers) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Value* w = b.Input("w", DType::kF32, {64, 64});
  Value* pre = b.Mul(x, x);
  Value* mm = b.MatMul(pre, w);
  Value* post = b.Relu(mm);
  b.Output({post});
  FusionPlan plan = PlanFor(&g);
  // matmul is not in any group; pre and post are separate groups.
  EXPECT_EQ(plan.group_of.count(mm->producer()), 0u);
  ASSERT_NE(GroupContaining(plan, pre), nullptr);
  ASSERT_NE(GroupContaining(plan, post), nullptr);
  EXPECT_NE(GroupContaining(plan, pre)->id, GroupContaining(plan, post)->id);
}

TEST(FusionTest, ReduceRootedInputFusion) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* sq = b.Mul(x, x);
  Value* sum = b.ReduceSum(sq, {1});
  b.Output({sum});
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, sum);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2);
  EXPECT_EQ(group->kind, FusionKind::kInput);
  EXPECT_EQ(group->root, sum->producer());
}

TEST(FusionTest, InputFusionDisabledKeepsReduceAlone) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* sum = b.ReduceSum(b.Mul(x, x), {1});
  b.Output({sum});
  FusionOptions options;
  options.enable_input_fusion = false;
  options.enable_stitch = false;
  FusionPlan plan = PlanFor(&g, options);
  const FusionGroup* group = GroupContaining(plan, sum);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 1);
}

TEST(FusionTest, SoftmaxStitchesIntoOneKernel) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* sm = b.Softmax(x);
  b.Output({sm});
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, sm);
  ASSERT_NE(group, nullptr);
  // reduce_max, sub, exp, reduce_sum, div — all in one stitch kernel.
  EXPECT_EQ(group->size(), 5);
  EXPECT_EQ(group->kind, FusionKind::kStitch);
  EXPECT_EQ(plan.groups.size(), 1u);
}

TEST(FusionTest, StitchDisabledSplitsSoftmax) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  FusionOptions options;
  options.enable_stitch = false;
  FusionPlan plan = PlanFor(&g, options);
  // Without stitching the softmax needs several kernels.
  EXPECT_GE(plan.groups.size(), 3u);
  for (const FusionGroup& group : plan.groups) {
    EXPECT_NE(group.kind, FusionKind::kStitch);
  }
}

TEST(FusionTest, LayerNormStitches) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 256});
  Value* scale = b.Input("scale", DType::kF32, {256});
  Value* bias = b.Input("bias", DType::kF32, {256});
  Value* ln = b.LayerNorm(x, scale, bias);
  b.Output({ln});
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, ln);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->kind, FusionKind::kStitch);
  // Everything (2 reduce_means + elementwise glue + constant-free ops)
  // lands in one kernel.
  EXPECT_EQ(plan.groups.size(), 1u);
}

TEST(FusionTest, StitchRespectsSharedMemoryBudget) {
  Graph g;
  GraphBuilder b(&g);
  // Static row of 64K floats = 256KB > 48KB budget.
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 65536});
  b.Output({b.Softmax(x)});
  FusionPlan plan = PlanFor(&g);
  for (const FusionGroup& group : plan.groups) {
    EXPECT_NE(group.kind, FusionKind::kStitch) << group.ToString();
  }
}

TEST(FusionTest, NoCycleThroughExternalNode) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Value* w = b.Input("w", DType::kF32, {64, 64});
  Value* a = b.Exp(x);
  Value* mm = b.MatMul(a, w);   // external (library) node
  Value* c = b.Add(a, mm);      // would form a cycle if fused with `a`
  b.Output({c});
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* ga = GroupContaining(plan, a);
  const FusionGroup* gc = GroupContaining(plan, c);
  ASSERT_NE(ga, nullptr);
  ASSERT_NE(gc, nullptr);
  EXPECT_NE(ga->id, gc->id);
}

TEST(FusionTest, MultiOutputGroupExposesInternalValue) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 32});
  Value* e = b.Exp(x);
  Value* r = b.Relu(e);
  b.Output({e, r});  // e escapes
  FusionPlan plan = PlanFor(&g);
  const FusionGroup* group = GroupContaining(plan, r);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2);
  EXPECT_EQ(group->outputs.size(), 2u);
}

TEST(FusionTest, ReshapeChainFusesAcrossFlatten) {
  // relu(reshape(x)) — same element count proven symbolically, fuses.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 64});
  Value* flat = b.Reshape(x, {-1, 64});
  Value* act = b.Relu(flat);
  b.Output({act});
  FusionPlan plan = PlanFor(&g, {}, {{"B", "S", ""}});
  const FusionGroup* group = GroupContaining(plan, act);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2);
}

TEST(FusionTest, MaxGroupSizeRespected) {
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim});
  for (int i = 0; i < 20; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  FusionOptions options;
  options.max_group_size = 8;
  FusionPlan plan = PlanFor(&g, options);
  for (const FusionGroup& group : plan.groups) {
    EXPECT_LE(group.size(), 8);
  }
  EXPECT_GE(plan.groups.size(), 3u);
}

// ---- decision provenance -------------------------------------------------

const FusionDecision* FindDecision(const FusionPlan& plan,
                                   const std::string& reason_substr) {
  for (const FusionDecision& d : plan.decisions) {
    if (d.reason.find(reason_substr) != std::string::npos) return &d;
  }
  return nullptr;
}

TEST(FusionDecisionTest, FusedPairRecordsProvingConstraint) {
  // Two dynamic inputs; the add's operand unification proves shape
  // equality, so the fused verdict must carry the numel relation.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* z = b.Tanh(b.Add(x, y));
  b.Output({z});

  FusionPlan plan = PlanFor(&g);
  ASSERT_FALSE(plan.decisions.empty());
  const FusionDecision* d = FindDecision(plan, "same-num-elements-proven");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->fused);
  EXPECT_EQ(d->phase, "loop");
  // The constraint names the symbolic element counts on both sides.
  EXPECT_NE(d->constraint.find("numel"), std::string::npos) << d->constraint;
  EXPECT_NE(d->constraint.find("=="), std::string::npos) << d->constraint;
  // The ids in the record resolve against the plan's own query API.
  EXPECT_FALSE(plan.DecisionsFor(d->producer, d->consumer).empty());
}

TEST(FusionDecisionTest, RowSpaceMismatchRecordsBlockingConstraint) {
  // Two row reductions over DIFFERENT row spaces ([B,512] vs [B,256])
  // joined by an add: the second reduce cannot be stitched into the
  // group, and the decision must name the mismatched row spaces.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 512});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 256});
  Value* rx = b.ReduceSum(x, {1});
  Value* ry = b.ReduceSum(y, {1});
  b.Output({b.Add(rx, ry)});

  FusionPlan plan = PlanFor(&g, {}, {{"B", ""}, {"B", ""}});
  const FusionDecision* blocked =
      FindDecision(plan, "blocked:row-space-mismatch");
  ASSERT_NE(blocked, nullptr);
  EXPECT_FALSE(blocked->fused);
  EXPECT_EQ(blocked->phase, "stitch");
  // The constraint text names both row spaces.
  EXPECT_NE(blocked->constraint.find("512"), std::string::npos)
      << blocked->constraint;
  EXPECT_NE(blocked->constraint.find("256"), std::string::npos)
      << blocked->constraint;
  // One of the reduces did stitch with the add.
  EXPECT_NE(FindDecision(plan, "stitch:row-synchronized-reduces"), nullptr);
}

TEST(FusionDecisionTest, StaticOnlyAblationRecordsMissingKnowledge) {
  // The F2 "static-only shapes" config on a dynamic softmax: a
  // shape-value-based planner cannot prove anything, and each blocked
  // verdict says exactly that.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});

  FusionOptions options;
  options.use_symbolic_shapes = false;
  FusionPlan plan = PlanFor(&g, options);
  const FusionDecision* blocked =
      FindDecision(plan, "blocked:static-shape-unknown");
  ASSERT_NE(blocked, nullptr);
  EXPECT_FALSE(blocked->fused);
  EXPECT_NE(blocked->constraint.find("symbolic"), std::string::npos)
      << blocked->constraint;
  // With symbolic shapes the same graph has no such verdict.
  FusionPlan symbolic = PlanFor(&g);
  EXPECT_EQ(FindDecision(symbolic, "blocked:static-shape-unknown"), nullptr);
}

TEST(FusionDecisionTest, LastVerdictWinsAcrossPhases) {
  // softmax: sub/exp/div reject loop-fusion against the reduces early
  // (reduce producers are skipped), but stitch later merges everything —
  // every surviving decision involving the reduces must read fused.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});

  FusionPlan plan = PlanFor(&g);
  ASSERT_EQ(plan.groups.size(), 1u);
  // Exactly one decision per (producer, consumer) pair.
  std::set<std::pair<int, int>> pairs;
  for (const FusionDecision& d : plan.decisions) {
    EXPECT_TRUE(pairs.emplace(d.producer, d.consumer).second)
        << "duplicate decision for %" << d.producer << "->%" << d.consumer;
  }
  // All nodes ended in one group, so no decision may stand as a final
  // blocked verdict between two grouped nodes *unless* the pair was merged
  // transitively; for softmax every considered edge eventually fused.
  for (const FusionDecision& d : plan.decisions) {
    EXPECT_TRUE(d.fused) << d.ToString();
  }
}

TEST(FusionDecisionTest, RecordingCanBeDisabled) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  FusionOptions options;
  options.record_decisions = false;
  FusionPlan plan = PlanFor(&g, options);
  EXPECT_TRUE(plan.decisions.empty());
  EXPECT_EQ(plan.groups.size(), 1u);  // planning itself is unaffected
}

TEST(FusionDecisionTest, DecisionsJsonIsWellFormed) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  FusionPlan plan = PlanFor(&g);
  std::string json = plan.DecisionsJson();
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"groups\""), std::string::npos);
  EXPECT_NE(json.find("\"constraint\""), std::string::npos);
}

TEST(FusionTest, StatsAreConsistent) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  FusionPlan plan = PlanFor(&g);
  auto stats = plan.GetStats();
  EXPECT_EQ(stats.num_groups, 1);
  EXPECT_EQ(stats.num_stitch_groups, 1);
  EXPECT_EQ(stats.num_fused_nodes, 5);
  // 5 nodes, 1 output -> 4 tensors internalized.
  EXPECT_EQ(stats.num_internalized_values, 4);
}

}  // namespace
}  // namespace disc
