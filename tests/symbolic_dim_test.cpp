#include "shape/symbolic_dim.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

DimExpr C(int64_t v) { return DimExpr::Const(v); }

TEST(SymbolicDimTest, NewSymbolsAreDistinctClasses) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol("batch");
  SymbolId b = m.NewSymbol("seq");
  EXPECT_NE(a, b);
  EXPECT_EQ(m.Find(a), a);
  EXPECT_EQ(m.Find(b), b);
  EXPECT_EQ(m.Info(a).name, "batch");
}

TEST(SymbolicDimTest, MergeUnifiesClasses) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymbolId c = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.MergeSymbols(b, c).ok());
  EXPECT_EQ(m.Find(a), m.Find(c));
  EXPECT_EQ(m.GetStats().num_classes, 1);
}

TEST(SymbolicDimTest, MergeKeepsSmallestRoot) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(b, a).ok());
  EXPECT_EQ(m.Find(b), a);
}

TEST(SymbolicDimTest, MergePropagatesValue) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(b, 128).ok());
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_EQ(m.GetValue(a), 128);
}

TEST(SymbolicDimTest, MergeConflictingValuesFails) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  ASSERT_TRUE(m.SetValue(b, 8).ok());
  EXPECT_FALSE(m.MergeSymbols(a, b).ok());
}

TEST(SymbolicDimTest, SetValueConflictFails) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  EXPECT_TRUE(m.SetValue(a, 4).ok());
  EXPECT_FALSE(m.SetValue(a, 5).ok());
}

TEST(SymbolicDimTest, DivisibilityIsLcm) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddDivisibility(a, 4);
  m.AddDivisibility(a, 6);
  EXPECT_EQ(m.GetDivisor(a), 12);
}

TEST(SymbolicDimTest, MergeCombinesDivisors) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.AddDivisibility(a, 2);
  m.AddDivisibility(b, 3);
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_EQ(m.GetDivisor(a), 6);
}

TEST(SymbolicDimTest, RangesIntersect) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 512).ok());
  ASSERT_TRUE(m.SetRange(a, 8, 1024).ok());
  EXPECT_EQ(m.GetRange(a), (std::pair<int64_t, int64_t>{8, 512}));
  EXPECT_FALSE(m.SetRange(a, 600, 700).ok());
}

TEST(SymbolicDimTest, LikelyValuesMostRecentLast) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddLikelyValue(a, 64);
  m.AddLikelyValue(a, 128);
  m.AddLikelyValue(a, 64);  // moves to the back
  EXPECT_EQ(m.GetLikelyValues(a), (std::vector<int64_t>{128, 64}));
}

TEST(SymbolicDimTest, CanonicalizeSubstitutesRootsAndValues) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymbolId c = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.SetValue(c, 3).ok());
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(b), DimExpr::Symbol(c));
  DimExpr canonical = m.Canonicalize(e);
  EXPECT_TRUE(canonical.Equals(DimExpr::Mul(C(3), DimExpr::Symbol(a))));
}

TEST(SymbolicDimTest, IsDimEqualThroughUnification) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  EXPECT_FALSE(m.IsDimEqual(ea, eb));
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsDimEqual(ea, eb));
}

TEST(SymbolicDimTest, IsDimEqualViaValues) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 7).ok());
  EXPECT_TRUE(m.IsDimEqual(DimExpr::Symbol(a), C(7)));
}

TEST(SymbolicDimTest, IsShapeEqual) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymShape s1 = {DimExpr::Symbol(a), C(4)};
  SymShape s2 = {DimExpr::Symbol(b), C(4)};
  EXPECT_FALSE(m.IsShapeEqual(s1, s2));
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsShapeEqual(s1, s2));
  EXPECT_FALSE(m.IsShapeEqual(s1, {DimExpr::Symbol(a)}));
}

TEST(SymbolicDimTest, SameNumElementsDirect) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  // [a, b, 768] vs [b, a, 768] — same product by commutativity.
  EXPECT_TRUE(m.IsSameNumElements({ea, eb, C(768)}, {eb, ea, C(768)}));
  // [a, 768] vs [a, 512] — differ.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(768)}, {ea, C(512)}));
}

TEST(SymbolicDimTest, SameNumElementsFlattened) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  // [a, b, 768] vs [a*b, 768] — equal via normalization, no fact needed.
  EXPECT_TRUE(
      m.IsSameNumElements({ea, eb, C(768)}, {DimExpr::Mul(ea, eb), C(768)}));
}

TEST(SymbolicDimTest, SameNumElementsViaProductFact) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();   // flattened tokens
  SymbolId b = m.NewSymbol();   // batch
  SymbolId c = m.NewSymbol();   // seq
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  DimExpr ec = DimExpr::Symbol(c);
  // Without the fact, [a, 64] vs [b, c, 64] are unrelated.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(64)}, {eb, ec, C(64)}));
  // A reshape recorded that a == b*c.
  m.AddProductEqual({ea}, {eb, ec});
  EXPECT_TRUE(m.IsSameNumElements({ea, C(64)}, {eb, ec, C(64)}));
  // And the inverse direction.
  EXPECT_TRUE(m.IsSameNumElements({eb, ec, C(64)}, {ea, C(64)}));
  // But unrelated products still differ.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(64)}, {eb, C(64)}));
}

TEST(SymbolicDimTest, IsDivisibleByUsesSymbolFacts) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddDivisibility(a, 8);
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(a), C(3));
  EXPECT_TRUE(m.IsDivisibleBy(e, 4));
  EXPECT_TRUE(m.IsDivisibleBy(e, 24));
  EXPECT_FALSE(m.IsDivisibleBy(e, 16));
}

TEST(SymbolicDimTest, IsDivisibleThroughMergedClass) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.AddDivisibility(a, 4);
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsDivisibleBy(DimExpr::Symbol(b), 4));
}

TEST(SymbolicDimTest, UpperBound) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  EXPECT_FALSE(m.UpperBound(DimExpr::Symbol(a)).has_value());
  ASSERT_TRUE(m.SetRange(a, 1, 512).ok());
  EXPECT_EQ(m.UpperBound(DimExpr::Symbol(a)), 512);
  ASSERT_TRUE(m.SetRange(b, 1, 8).ok());
  DimExpr e = DimExpr::Add(DimExpr::Mul(DimExpr::Symbol(a), DimExpr::Symbol(b)),
                           C(10));
  EXPECT_EQ(m.UpperBound(e), 512 * 8 + 10);
  EXPECT_EQ(m.UpperBound(C(42)), 42);
}

TEST(SymbolicDimTest, StatsCounts) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  m.AddProductEqual({DimExpr::Symbol(a)}, {DimExpr::Symbol(b), C(2)});
  auto stats = m.GetStats();
  EXPECT_EQ(stats.num_symbols, 3);
  EXPECT_EQ(stats.num_classes, 2);
  EXPECT_EQ(stats.num_known_constants, 1);
}

TEST(SymbolicDimTest, CanonicalizeAfterLateSetValue) {
  // Values learned AFTER an expression was built still apply on query.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(a), DimExpr::Const(2));
  EXPECT_FALSE(m.Canonicalize(e).IsConst());
  ASSERT_TRUE(m.SetValue(a, 5).ok());
  EXPECT_TRUE(m.Canonicalize(e).IsConstValue(10));
}

TEST(SymbolicDimTest, MergeIsIdempotentAndSymmetric) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.MergeSymbols(b, a).ok());
  ASSERT_TRUE(m.MergeSymbols(a, a).ok());
  EXPECT_EQ(m.GetStats().num_classes, 1);
}

TEST(SymbolicDimTest, UpperBoundThroughDivision) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 100).ok());
  EXPECT_EQ(m.UpperBound(DimExpr::FloorDiv(DimExpr::Symbol(a),
                                           DimExpr::Const(4))),
            25);
  EXPECT_EQ(m.UpperBound(DimExpr::CeilDiv(DimExpr::Symbol(a),
                                          DimExpr::Const(3))),
            34);
  EXPECT_EQ(m.UpperBound(DimExpr::Mod(DimExpr::Symbol(a),
                                      DimExpr::Const(8))),
            7);
}

TEST(SymbolicDimTest, TrivialProductFactSkipped) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  m.AddProductEqual({ea, C(4)}, {C(4), ea});
  EXPECT_EQ(m.GetStats().num_product_facts, 0);
}

}  // namespace
}  // namespace disc
