#include "shape/symbolic_dim.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

DimExpr C(int64_t v) { return DimExpr::Const(v); }

TEST(SymbolicDimTest, NewSymbolsAreDistinctClasses) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol("batch");
  SymbolId b = m.NewSymbol("seq");
  EXPECT_NE(a, b);
  EXPECT_EQ(m.Find(a), a);
  EXPECT_EQ(m.Find(b), b);
  EXPECT_EQ(m.Info(a).name, "batch");
}

TEST(SymbolicDimTest, MergeUnifiesClasses) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymbolId c = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.MergeSymbols(b, c).ok());
  EXPECT_EQ(m.Find(a), m.Find(c));
  EXPECT_EQ(m.GetStats().num_classes, 1);
}

TEST(SymbolicDimTest, MergeKeepsSmallestRoot) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(b, a).ok());
  EXPECT_EQ(m.Find(b), a);
}

TEST(SymbolicDimTest, MergePropagatesValue) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(b, 128).ok());
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_EQ(m.GetValue(a), 128);
}

TEST(SymbolicDimTest, MergeConflictingValuesFails) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  ASSERT_TRUE(m.SetValue(b, 8).ok());
  EXPECT_FALSE(m.MergeSymbols(a, b).ok());
}

TEST(SymbolicDimTest, SetValueConflictFails) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  EXPECT_TRUE(m.SetValue(a, 4).ok());
  EXPECT_FALSE(m.SetValue(a, 5).ok());
}

TEST(SymbolicDimTest, DivisibilityIsLcm) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddDivisibility(a, 4);
  m.AddDivisibility(a, 6);
  EXPECT_EQ(m.GetDivisor(a), 12);
}

TEST(SymbolicDimTest, MergeCombinesDivisors) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.AddDivisibility(a, 2);
  m.AddDivisibility(b, 3);
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_EQ(m.GetDivisor(a), 6);
}

TEST(SymbolicDimTest, RangesIntersect) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 512).ok());
  ASSERT_TRUE(m.SetRange(a, 8, 1024).ok());
  EXPECT_EQ(m.GetRange(a), (std::pair<int64_t, int64_t>{8, 512}));
  EXPECT_FALSE(m.SetRange(a, 600, 700).ok());
}

TEST(SymbolicDimTest, LikelyValuesMostRecentLast) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddLikelyValue(a, 64);
  m.AddLikelyValue(a, 128);
  m.AddLikelyValue(a, 64);  // moves to the back
  EXPECT_EQ(m.GetLikelyValues(a), (std::vector<int64_t>{128, 64}));
}

TEST(SymbolicDimTest, CanonicalizeSubstitutesRootsAndValues) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymbolId c = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.SetValue(c, 3).ok());
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(b), DimExpr::Symbol(c));
  DimExpr canonical = m.Canonicalize(e);
  EXPECT_TRUE(canonical.Equals(DimExpr::Mul(C(3), DimExpr::Symbol(a))));
}

TEST(SymbolicDimTest, IsDimEqualThroughUnification) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  EXPECT_FALSE(m.IsDimEqual(ea, eb));
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsDimEqual(ea, eb));
}

TEST(SymbolicDimTest, IsDimEqualViaValues) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 7).ok());
  EXPECT_TRUE(m.IsDimEqual(DimExpr::Symbol(a), C(7)));
}

TEST(SymbolicDimTest, IsShapeEqual) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  SymShape s1 = {DimExpr::Symbol(a), C(4)};
  SymShape s2 = {DimExpr::Symbol(b), C(4)};
  EXPECT_FALSE(m.IsShapeEqual(s1, s2));
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsShapeEqual(s1, s2));
  EXPECT_FALSE(m.IsShapeEqual(s1, {DimExpr::Symbol(a)}));
}

TEST(SymbolicDimTest, SameNumElementsDirect) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  // [a, b, 768] vs [b, a, 768] — same product by commutativity.
  EXPECT_TRUE(m.IsSameNumElements({ea, eb, C(768)}, {eb, ea, C(768)}));
  // [a, 768] vs [a, 512] — differ.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(768)}, {ea, C(512)}));
}

TEST(SymbolicDimTest, SameNumElementsFlattened) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  // [a, b, 768] vs [a*b, 768] — equal via normalization, no fact needed.
  EXPECT_TRUE(
      m.IsSameNumElements({ea, eb, C(768)}, {DimExpr::Mul(ea, eb), C(768)}));
}

TEST(SymbolicDimTest, SameNumElementsViaProductFact) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();   // flattened tokens
  SymbolId b = m.NewSymbol();   // batch
  SymbolId c = m.NewSymbol();   // seq
  DimExpr ea = DimExpr::Symbol(a);
  DimExpr eb = DimExpr::Symbol(b);
  DimExpr ec = DimExpr::Symbol(c);
  // Without the fact, [a, 64] vs [b, c, 64] are unrelated.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(64)}, {eb, ec, C(64)}));
  // A reshape recorded that a == b*c.
  m.AddProductEqual({ea}, {eb, ec});
  EXPECT_TRUE(m.IsSameNumElements({ea, C(64)}, {eb, ec, C(64)}));
  // And the inverse direction.
  EXPECT_TRUE(m.IsSameNumElements({eb, ec, C(64)}, {ea, C(64)}));
  // But unrelated products still differ.
  EXPECT_FALSE(m.IsSameNumElements({ea, C(64)}, {eb, C(64)}));
}

TEST(SymbolicDimTest, IsDivisibleByUsesSymbolFacts) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  m.AddDivisibility(a, 8);
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(a), C(3));
  EXPECT_TRUE(m.IsDivisibleBy(e, 4));
  EXPECT_TRUE(m.IsDivisibleBy(e, 24));
  EXPECT_FALSE(m.IsDivisibleBy(e, 16));
}

TEST(SymbolicDimTest, IsDivisibleThroughMergedClass) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.AddDivisibility(a, 4);
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  EXPECT_TRUE(m.IsDivisibleBy(DimExpr::Symbol(b), 4));
}

TEST(SymbolicDimTest, UpperBound) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  EXPECT_FALSE(m.UpperBound(DimExpr::Symbol(a)).has_value());
  ASSERT_TRUE(m.SetRange(a, 1, 512).ok());
  EXPECT_EQ(m.UpperBound(DimExpr::Symbol(a)), 512);
  ASSERT_TRUE(m.SetRange(b, 1, 8).ok());
  DimExpr e = DimExpr::Add(DimExpr::Mul(DimExpr::Symbol(a), DimExpr::Symbol(b)),
                           C(10));
  EXPECT_EQ(m.UpperBound(e), 512 * 8 + 10);
  EXPECT_EQ(m.UpperBound(C(42)), 42);
}

TEST(SymbolicDimTest, StatsCounts) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.SetValue(a, 4).ok());
  m.AddProductEqual({DimExpr::Symbol(a)}, {DimExpr::Symbol(b), C(2)});
  auto stats = m.GetStats();
  EXPECT_EQ(stats.num_symbols, 3);
  EXPECT_EQ(stats.num_classes, 2);
  EXPECT_EQ(stats.num_known_constants, 1);
}

TEST(SymbolicDimTest, CanonicalizeAfterLateSetValue) {
  // Values learned AFTER an expression was built still apply on query.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr e = DimExpr::Mul(DimExpr::Symbol(a), DimExpr::Const(2));
  EXPECT_FALSE(m.Canonicalize(e).IsConst());
  ASSERT_TRUE(m.SetValue(a, 5).ok());
  EXPECT_TRUE(m.Canonicalize(e).IsConstValue(10));
}

TEST(SymbolicDimTest, MergeIsIdempotentAndSymmetric) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.MergeSymbols(a, b).ok());
  ASSERT_TRUE(m.MergeSymbols(b, a).ok());
  ASSERT_TRUE(m.MergeSymbols(a, a).ok());
  EXPECT_EQ(m.GetStats().num_classes, 1);
}

TEST(SymbolicDimTest, UpperBoundThroughDivision) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 100).ok());
  EXPECT_EQ(m.UpperBound(DimExpr::FloorDiv(DimExpr::Symbol(a),
                                           DimExpr::Const(4))),
            25);
  EXPECT_EQ(m.UpperBound(DimExpr::CeilDiv(DimExpr::Symbol(a),
                                          DimExpr::Const(3))),
            34);
  EXPECT_EQ(m.UpperBound(DimExpr::Mod(DimExpr::Symbol(a),
                                      DimExpr::Const(8))),
            7);
}

TEST(SymbolicDimTest, LowerBoundDefaultsToOne) {
  // Dims are at least 1 by default, so every pure product/sum of symbols
  // has a lower bound without explicit range facts.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  EXPECT_EQ(m.LowerBound(DimExpr::Symbol(a)), 1);
  EXPECT_EQ(m.LowerBound(DimExpr::Mul(DimExpr::Symbol(a),
                                      DimExpr::Symbol(b))),
            1);
  EXPECT_EQ(m.LowerBound(C(42)), 42);
}

TEST(SymbolicDimTest, LowerBoundUsesRangeFacts) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 8, 512).ok());
  ASSERT_TRUE(m.SetRange(b, 4, 16).ok());
  DimExpr e = DimExpr::Add(DimExpr::Mul(DimExpr::Symbol(a), DimExpr::Symbol(b)),
                           C(10));
  EXPECT_EQ(m.LowerBound(e), 8 * 4 + 10);
  EXPECT_EQ(m.LowerBound(DimExpr::FloorDiv(DimExpr::Symbol(a), C(4))), 2);
  EXPECT_EQ(m.LowerBound(DimExpr::CeilDiv(DimExpr::Symbol(a), C(3))), 3);
  // Mod of a non-negative numerator is at least 0.
  EXPECT_EQ(m.LowerBound(DimExpr::Mod(DimExpr::Symbol(a), C(8))), 0);
}

TEST(SymbolicDimTest, LowerBoundNegativeCoefficientNeedsUpperBound) {
  // -2*a is bounded below only when a is bounded above.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr e = DimExpr::Mul(C(-2), DimExpr::Symbol(a));
  EXPECT_FALSE(m.LowerBound(e).has_value());
  ASSERT_TRUE(m.SetRange(a, 1, 100).ok());
  EXPECT_EQ(m.LowerBound(e), -200);
}

TEST(SymbolicDimTest, ProvablyLeStructural) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  // Reflexive, and monotone in a positive coefficient: a <= 2a since
  // dims are at least 1.
  EXPECT_TRUE(m.ProvablyLe(ea, ea));
  EXPECT_TRUE(m.ProvablyLe(ea, DimExpr::Mul(C(2), ea)));
  EXPECT_TRUE(m.ProvablyLe(DimExpr::Mul(C(256), ea), DimExpr::Mul(C(512), ea)));
  // The reverse direction needs an upper bound on a and is false anyway.
  EXPECT_FALSE(m.ProvablyLe(DimExpr::Mul(C(512), ea), DimExpr::Mul(C(256), ea)));
  EXPECT_TRUE(m.ProvablyLe(C(7), C(9)));
  EXPECT_FALSE(m.ProvablyLe(C(9), C(7)));
}

TEST(SymbolicDimTest, ProvablyLeUnrelatedSymbolsIsFalse) {
  // Conservative: without facts relating a and b, neither direction is
  // provable.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  EXPECT_FALSE(m.ProvablyLe(DimExpr::Symbol(a), DimExpr::Symbol(b)));
  EXPECT_FALSE(m.ProvablyLe(DimExpr::Symbol(b), DimExpr::Symbol(a)));
}

TEST(SymbolicDimTest, ProvablyLeViaRanges) {
  // Disjoint ranges order the symbols: a in [1,8], b in [8,1024].
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 8).ok());
  ASSERT_TRUE(m.SetRange(b, 8, 1024).ok());
  EXPECT_TRUE(m.ProvablyLe(DimExpr::Symbol(a), DimExpr::Symbol(b)));
  EXPECT_FALSE(m.ProvablyLe(DimExpr::Symbol(b), DimExpr::Symbol(a)));
}

TEST(SymbolicDimTest, ProvablyLeThroughCeilDiv) {
  // ceildiv is monotone in its numerator: same divisor and coefficient,
  // provable numerator order carries through.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetRange(a, 1, 8).ok());
  ASSERT_TRUE(m.SetRange(b, 8, 1024).ok());
  DimExpr ca = DimExpr::CeilDiv(DimExpr::Symbol(a), C(256));
  DimExpr cb = DimExpr::CeilDiv(DimExpr::Symbol(b), C(256));
  EXPECT_TRUE(m.ProvablyLe(ca, cb));
  EXPECT_TRUE(m.ProvablyLe(DimExpr::Mul(C(64), ca), DimExpr::Mul(C(64), cb)));
  EXPECT_FALSE(m.ProvablyLe(cb, ca));
}

TEST(SymbolicDimTest, ProvablyLeUsesValueFacts) {
  // A known value participates through canonicalization.
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  SymbolId b = m.NewSymbol();
  ASSERT_TRUE(m.SetValue(a, 64).ok());
  EXPECT_TRUE(m.ProvablyLe(DimExpr::Symbol(a),
                           DimExpr::Mul(C(64), DimExpr::Symbol(b))));
}

TEST(SymbolicDimTest, TrivialProductFactSkipped) {
  SymbolicDimManager m;
  SymbolId a = m.NewSymbol();
  DimExpr ea = DimExpr::Symbol(a);
  m.AddProductEqual({ea, C(4)}, {C(4), ea});
  EXPECT_EQ(m.GetStats().num_product_facts, 0);
}

}  // namespace
}  // namespace disc
