// Tests for the compilation-introspection subsystem: artifact dumping
// (determinism, numbering, filtering), the JSON round-trip, and the
// pipeline summary's agreement with the tracer.
#include "support/artifact_dump.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/json.h"
#include "support/trace.h"

namespace disc {
namespace {

namespace fs = std::filesystem;

class DumpDir {
 public:
  explicit DumpDir(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("disc_artifact_test_" + name + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~DumpDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

  std::vector<std::string> Files() const {
    std::vector<std::string> names;
    if (!fs::exists(path_)) return names;
    for (const auto& entry : fs::recursive_directory_iterator(path_)) {
      if (entry.is_regular_file()) {
        names.push_back(fs::relative(entry.path(), path_).string());
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string Read(const std::string& name) const {
    auto content = ReadFileToString((fs::path(path_) / name).string());
    EXPECT_TRUE(content.ok()) << name;
    return content.ok() ? *content : std::string();
  }

 private:
  std::string path_;
};

// A dynamic graph whose pipeline actually changes IR (foldable constants,
// dead code), whose fusion runs all three phases, and whose two inputs
// carry *distinct* dim symbols so the elementwise join has to excavate a
// merge-symbols constraint.
std::unique_ptr<Graph> TestGraph() {
  auto g = std::make_unique<Graph>("dump_test");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* x2 = b.Input("x2", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* dead = b.Exp(x);
  (void)dead;
  Value* y = b.Add(b.Mul(x, b.ScalarF32(1.0f)), b.ScalarF32(0.0f));
  b.Output({b.Softmax(b.Tanh(b.Add(y, x2)))});
  return g;
}

Status CompileWithDump(const std::string& dir, const std::string& filter = "") {
  auto graph = TestGraph();
  CompileOptions options;
  options.dump.dir = dir;
  options.dump.filter = filter;
  return DiscCompiler::Compile(*graph, {{"B", "S"}, {"B2", "S2"}}, options)
      .status();
}

TEST(ArtifactDumpTest, DumperDisabledWritesNothing) {
  ArtifactDumper dumper;  // no dir
  EXPECT_FALSE(dumper.enabled());
  EXPECT_FALSE(dumper.Matches("anything"));
  EXPECT_TRUE(dumper.Write("x.txt", "content").ok());
}

TEST(ArtifactDumpTest, FilterIsSubstringMatch) {
  DumpOptions options;
  options.dir = "/tmp/unused";
  options.filter = "cse";
  ArtifactDumper dumper(options);
  EXPECT_TRUE(dumper.Matches("passes/0003.cse.before.ir"));
  EXPECT_TRUE(dumper.Matches("cse"));
  EXPECT_FALSE(dumper.Matches("fusion_decisions.json"));
}

TEST(ArtifactDumpTest, CompileDumpsExpectedArtifactSet) {
  DumpDir dir("set");
  ASSERT_TRUE(CompileWithDump(dir.path()).ok());
  std::vector<std::string> files = dir.Files();
  auto has = [&](const std::string& name) {
    return std::find(files.begin(), files.end(), name) != files.end();
  };
  EXPECT_TRUE(has("module_input.ir"));
  EXPECT_TRUE(has("module_optimized.ir"));
  EXPECT_TRUE(has("pipeline_summary.json"));
  EXPECT_TRUE(has("shape_constraints.json"));
  EXPECT_TRUE(has("fusion_decisions.json"));
  EXPECT_TRUE(has("fusion_plan.txt"));
  // At least one pass changed the graph -> numbered before/after pairs.
  int snapshots = 0;
  for (const std::string& f : files) {
    if (f.rfind("passes/", 0) == 0) ++snapshots;
  }
  EXPECT_GT(snapshots, 0);
  EXPECT_EQ(snapshots % 2, 0) << "snapshots come in before/after pairs";
}

TEST(ArtifactDumpTest, PassSnapshotsAreNumberedAndPaired) {
  DumpDir dir("pairs");
  ASSERT_TRUE(CompileWithDump(dir.path()).ok());
  std::vector<std::string> befores;
  for (const std::string& f : dir.Files()) {
    if (f.rfind("passes/", 0) == 0 &&
        f.find(".before.ir") != std::string::npos) {
      befores.push_back(f);
    }
  }
  ASSERT_FALSE(befores.empty());
  for (size_t i = 0; i < befores.size(); ++i) {
    // passes/NNNN.<pass>.before.ir — sequence numbers dense from 0 (the
    // sorted order of zero-padded numbers IS the application order).
    std::string seq = befores[i].substr(7, 4);
    EXPECT_EQ(seq, (i < 10 ? "000" : "00") + std::to_string(i)) << befores[i];
    std::string after = befores[i];
    after.replace(after.find(".before.ir"), 10, ".after.ir");
    std::string before_ir = dir.Read(befores[i]);
    std::string after_ir = dir.Read(after);
    EXPECT_NE(before_ir, after_ir)
        << befores[i] << " dumped but IR did not change";
  }
}

TEST(ArtifactDumpTest, TwoCompilesProduceByteIdenticalArtifacts) {
  DumpDir dir1("det1");
  DumpDir dir2("det2");
  ASSERT_TRUE(CompileWithDump(dir1.path()).ok());
  ASSERT_TRUE(CompileWithDump(dir2.path()).ok());
  std::vector<std::string> files1 = dir1.Files();
  ASSERT_EQ(files1, dir2.Files());
  for (const std::string& f : files1) {
    if (f == "pipeline_summary.json") continue;  // contains wall times
    EXPECT_EQ(dir1.Read(f), dir2.Read(f)) << f << " differs across compiles";
  }
}

TEST(ArtifactDumpTest, FilterRestrictsArtifacts) {
  DumpDir dir("filter");
  ASSERT_TRUE(CompileWithDump(dir.path(), "fusion").ok());
  for (const std::string& f : dir.Files()) {
    EXPECT_NE(f.find("fusion"), std::string::npos) << f;
  }
  std::vector<std::string> files = dir.Files();
  EXPECT_TRUE(std::find(files.begin(), files.end(), "fusion_decisions.json") !=
              files.end());
}

TEST(ArtifactDumpTest, DecisionJsonParsesAndNamesConstraints) {
  DumpDir dir("json");
  ASSERT_TRUE(CompileWithDump(dir.path()).ok());
  auto doc = ParseJson(dir.Read("fusion_decisions.json"));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* decisions = doc->Find("decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_TRUE(decisions->is_array());
  ASSERT_FALSE(decisions->as_array().empty());
  bool some_fused_with_constraint = false;
  for (const JsonValue& d : decisions->as_array()) {
    ASSERT_NE(d.Find("producer"), nullptr);
    ASSERT_NE(d.Find("reason"), nullptr);
    if (d.Find("fused")->as_bool() &&
        !d.Find("constraint")->as_string().empty()) {
      some_fused_with_constraint = true;
    }
  }
  EXPECT_TRUE(some_fused_with_constraint);

  auto constraints = ParseJson(dir.Read("shape_constraints.json"));
  ASSERT_TRUE(constraints.ok());
  const JsonValue* list = constraints->Find("constraints");
  ASSERT_NE(list, nullptr);
  ASSERT_FALSE(list->as_array().empty());
  // Elementwise ops over two dynamic inputs excavate merge-symbols facts
  // attributed to real nodes.
  bool attributed = false;
  for (const JsonValue& r : list->as_array()) {
    if (r.Find("node")->as_number() >= 0) attributed = true;
  }
  EXPECT_TRUE(attributed);
}

TEST(ArtifactDumpTest, PipelineSummaryAgreesWithTraceSpans) {
  TraceSession& session = TraceSession::Global();
  session.Enable();
  DumpDir dir("trace");
  ASSERT_TRUE(CompileWithDump(dir.path()).ok());
  session.Disable();

  auto summary = ParseJson(dir.Read("pipeline_summary.json"));
  ASSERT_TRUE(summary.ok());
  const JsonValue* passes = summary->Find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_FALSE(passes->as_array().empty());
  for (const JsonValue& p : passes->as_array()) {
    // Tracing was on during the compile, so every pass row joins its
    // opt.pass spans; span count equals the manager's own run count and
    // the two independent clocks agree on the total time.
    const JsonValue* spans = p.Find("trace_spans");
    ASSERT_NE(spans, nullptr)
        << p.Find("name")->as_string() << " missing trace join";
    EXPECT_GE(spans->as_number(), p.Find("runs")->as_number())
        << p.Find("name")->as_string();
    double own_ms = p.Find("total_ms")->as_number();
    double trace_ms = p.Find("trace_total_ms")->as_number();
    EXPECT_NEAR(own_ms, trace_ms, std::max(0.5, own_ms * 0.5))
        << p.Find("name")->as_string();
  }
  // change_log rows are merged (satellite bugfix): at most one entry per
  // pass name.
  const JsonValue* change_log = summary->Find("change_log");
  ASSERT_NE(change_log, nullptr);
  std::vector<std::string> names;
  for (const JsonValue& entry : change_log->as_array()) {
    names.push_back(entry.Find("name")->as_string());
  }
  std::vector<std::string> unique = names;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(names.size(), unique.size());
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3], "b": {"nested": true, "s": "he\"llo\n"}, )"
      R"("empty": [], "null": null})";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("a")->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(doc->Find("b")->Find("s")->as_string(), "he\"llo\n");
  EXPECT_TRUE(doc->Find("null")->is_null());
  // Serialize -> parse -> serialize is a fixpoint (determinism).
  std::string once = doc->Serialize();
  auto again = ParseJson(once);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(once, again->Serialize());
  // Pretty form parses back to the same document.
  auto pretty = ParseJson(doc->SerializePretty());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty->Serialize(), once);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
}

}  // namespace
}  // namespace disc
