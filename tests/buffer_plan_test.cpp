#include "runtime/buffer_plan.h"

#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "models/models.h"

namespace disc {
namespace {

// A chain of same-shaped kernels should ping-pong between ~2 slots.
TEST(BufferPlanTest, ChainCollapsesToFewSlots) {
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim, 64});
  CompileOptions options = CompileOptions::NoFusion();
  for (int i = 0; i < 10; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, options);
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  EXPECT_EQ(plan.num_values, 10);
  EXPECT_LE(plan.num_slots(), 3);
  EXPECT_GE(plan.num_reused, 7);
}

TEST(BufferPlanTest, DifferentSymbolicSizesNeverShare) {
  // [B,64] and [B,32] values have different symbolic byte sizes; even with
  // disjoint lifetimes they must use different slots (B is unknown).
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 64});
  Value* a = b.Exp(x);                     // [B, 64]
  Value* s = b.Slice(a, {0, 0}, {-1, 32}, {1, 1});  // [B, 32]
  Value* c = b.Tanh(s);                    // [B, 32], `a` dead by now
  b.Output({c});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  // Slots for the 64-wide and 32-wide values are distinct sizes.
  std::set<std::string> sizes;
  for (const DimExpr& bytes : plan.slot_bytes) sizes.insert(bytes.ToString());
  EXPECT_GE(sizes.size(), 2u);
}

TEST(BufferPlanTest, SameSymbolicSizeSharesAcrossShapes) {
  // [B,8] and its transpose-ish reshape [8,B]... use two equal-sized but
  // differently-shaped values with disjoint lifetimes: one slot.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* a = b.Exp(x);                 // [B, 8]
  Value* r = b.Reshape(a, {8, -1});    // [8, B] — same byte size
  Value* c = b.Tanh(r);                // `a` dead
  b.Output({c});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  EXPECT_GT(plan.num_reused, 0) << plan.ToString();
}

TEST(BufferPlanTest, GraphOutputsArePinned) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Value* a = b.Exp(x);
  Value* c = b.Tanh(a);
  Value* d = b.Abs(c);
  b.Output({a, d});  // `a` escapes: its slot must never be recycled
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  int a_slot = plan.slot_of.at((*exe)->graph().outputs()[0]);
  for (const auto& [value, slot] : plan.slot_of) {
    if (value != (*exe)->graph().outputs()[0]) {
      EXPECT_NE(slot, a_slot) << "pinned output slot was recycled";
    }
  }
}

TEST(BufferPlanTest, DisjointLifetimesRequiredForSharing) {
  // Diamond: both branches are live at the join — they cannot share.
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Value* l = b.Exp(x);
  Value* r = b.Tanh(x);
  b.Output({b.Add(l, r)});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  const Graph& og = (*exe)->graph();
  const Node* add = og.outputs()[0]->producer();
  EXPECT_NE(plan.slot_of.at(add->operand(0)),
            plan.slot_of.at(add->operand(1)));
}

TEST(BufferPlanTest, ChainedReuseCountsEveryEvent) {
  // A slot recycled twice holds three occupants and must contribute TWO
  // reuse events — chained reuse is not collapsed into one.
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim, 64});
  for (int i = 0; i < 4; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  // 4 same-sized values ping-pong across 2 slots: occupants 2+2.
  EXPECT_EQ(plan.num_values, 4);
  EXPECT_EQ(plan.num_slots(), 2);
  int64_t occupants = 0;
  for (int64_t o : plan.slot_occupants) occupants += o;
  EXPECT_EQ(occupants, plan.num_values);
  EXPECT_EQ(plan.num_reused, 2) << plan.ToString();
  EXPECT_EQ(plan.num_recycled_slots(), 2);
  EXPECT_EQ(plan.max_slot_occupancy(), 2);
  // The derived invariant that held only by accident before: every value
  // is either a slot opener or a reuse event.
  EXPECT_EQ(plan.num_values, plan.num_slots() + plan.num_reused);
}

TEST(BufferPlanTest, DeepChainShowsInOccupancy) {
  // A 10-deep chain: 2 slots, 8 reuse events, and the deepest occupant
  // chain is 5 — ToString surfaces all three.
  Graph g;
  GraphBuilder b(&g);
  Value* v = b.Input("x", DType::kF32, {kDynamicDim, 64});
  for (int i = 0; i < 10; ++i) v = b.Unary(OpKind::kTanh, v);
  b.Output({v});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}}, CompileOptions::NoFusion());
  ASSERT_TRUE(exe.ok());
  const BufferAssignment& plan = (*exe)->buffer_plan();
  EXPECT_EQ(plan.num_reused, 8);
  EXPECT_EQ(plan.max_slot_occupancy(), 5);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("deepest chain 5"), std::string::npos) << s;
}

TEST(BufferPlanTest, ReportCarriesPlanStats) {
  ModelConfig config;
  Model bert = BuildBert(config);
  auto exe = DiscCompiler::Compile(*bert.graph, bert.input_dim_labels);
  ASSERT_TRUE(exe.ok());
  const CompileReport& report = (*exe)->report();
  EXPECT_GT(report.buffer_values, 0);
  EXPECT_GT(report.buffer_slots, 0);
  EXPECT_LT(report.buffer_slots, report.buffer_values)
      << "no reuse found in a transformer graph";
}

TEST(BufferPlanTest, PlannerHandlesEmptySchedule) {
  BufferAssignment plan = PlanBuffers({}, {}, *[] {
    static Graph g;
    static ShapeAnalysis analysis(&g);
    DISC_CHECK_OK(analysis.Run());
    return &analysis;
  }());
  EXPECT_EQ(plan.num_values, 0);
  EXPECT_EQ(plan.num_slots(), 0);
}

}  // namespace
}  // namespace disc
