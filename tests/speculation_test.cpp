// Shape speculation: exact-shape variants from likely-value hints and the
// runtime feedback loop in the DISC engine.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "baselines/dynamic_engine.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "support/rng.h"

namespace disc {
namespace {

std::unique_ptr<Graph> EwModel() {
  auto g = std::make_unique<Graph>("spec");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(x, x))});
  return g;
}

TEST(SpeculationTest, HintsProduceExactVariants) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {512}}, {"S", {1024}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  ASSERT_EQ((*exe)->kernels().size(), 1u);
  const auto& variants = (*exe)->kernels()[0]->variants();
  ASSERT_GE(variants.size(), 3u);
  EXPECT_TRUE(variants[0].exact_shape) << variants[0].ToString();
  EXPECT_FALSE(variants[0].guard.always_true());

  // Hot shape dispatches to the exact variant...
  auto hot = (*exe)->RunWithShapes({{512, 1024}});
  ASSERT_TRUE(hot.ok());
  bool used_exact = false;
  for (const auto& [name, count] : hot->profile.variant_counts) {
    if (name.find("exact_") != std::string::npos && count > 0) {
      used_exact = true;
    }
  }
  EXPECT_TRUE(used_exact) << hot->profile.ToString();

  // ...and is faster than the same shape without hints.
  auto plain = DiscCompiler::Compile(*g, {{"B", "S"}});
  ASSERT_TRUE(plain.ok());
  auto cold = (*plain)->RunWithShapes({{512, 1024}});
  ASSERT_TRUE(cold.ok());
  EXPECT_LT(hot->profile.device_time_us, cold->profile.device_time_us);

  // Off-hint shapes fall back and still run.
  auto other = (*exe)->RunWithShapes({{3, 17}});
  ASSERT_TRUE(other.ok());
  for (const auto& [name, count] : other->profile.variant_counts) {
    EXPECT_EQ(name.find("exact_"), std::string::npos) << name;
  }
}

TEST(SpeculationTest, SpeculationNeverChangesNumerics) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {4}}, {"S", {6}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  Rng rng(2);
  for (auto dims : std::vector<std::vector<int64_t>>{{4, 6}, {5, 7}}) {
    Tensor in(DType::kF32, dims);
    for (int64_t i = 0; i < in.num_elements(); ++i) {
      in.f32_data()[i] = rng.Normal();
    }
    auto got = (*exe)->Run({in});
    auto want = EvaluateGraph(*g, {in});
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_TRUE(Tensor::AllClose(got->outputs[0], (*want)[0]));
  }
}

TEST(SpeculationTest, SpeculationOffByOption) {
  auto g = EwModel();
  CompileOptions options;
  options.specialize.enable_shape_speculation = false;
  options.likely_dim_values = {{"B", {8}}, {"S", {128}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  for (const auto& variant : (*exe)->kernels()[0]->variants()) {
    EXPECT_FALSE(variant.exact_shape);
  }
}

TEST(SpeculationTest, MultipleHotValuesGetOwnVariants) {
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {8, 4}}, {"S", {128, 64}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  int exact_count = 0;
  for (const auto& variant : (*exe)->kernels()[0]->variants()) {
    if (variant.exact_shape) ++exact_count;
  }
  EXPECT_EQ(exact_count, 2);
}

TEST(SpeculationTest, ReduceKernelSpeculatesScheduleStatically) {
  Graph g;
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.ReduceSum(x, {1})});
  CompileOptions options;
  options.likely_dim_values = {{"B", {4096}}, {"S", {64}}};
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  const auto& variants = (*exe)->kernels()[0]->variants();
  ASSERT_TRUE(variants[0].exact_shape);
  EXPECT_EQ(variants[0].schedule, ReduceSchedule::kWarpPerRow);
}

TEST(SpeculationTest, EngineFeedbackLoopRecompilesAndSpeedsUpHotShape) {
  auto g = EwModel();
  DynamicCompilerEngine engine(DynamicProfile::DiscWithSpeculation());
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());

  // A hot shape dominates the trace.
  std::vector<std::vector<int64_t>> hot = {{512, 1024}};
  auto before = engine.Query(hot, DeviceSpec::T4());
  ASSERT_TRUE(before.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Query(hot, DeviceSpec::T4()).ok());
  }
  EXPECT_EQ(engine.stats().compilations, 2);  // initial + feedback
  auto after = engine.Query(hot, DeviceSpec::T4());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->device_us, before->device_us);
  // Cold shapes still served by guarded fallbacks.
  EXPECT_TRUE(engine.Query({{3, 5}}, DeviceSpec::T4()).ok());
}

TEST(SpeculationTest, PlainDiscEngineNeverRecompiles) {
  auto g = EwModel();
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(engine.Query({{16, 256}}, DeviceSpec::T4()).ok());
  }
  EXPECT_EQ(engine.stats().compilations, 1);
}

int CountExactVariants(const Executable& exe) {
  int exact = 0;
  for (const auto& kernel : exe.kernels()) {
    for (const auto& variant : kernel->variants()) {
      if (variant.exact_shape) ++exact;
    }
  }
  return exact;
}

TEST(SpeculationTest, DuplicateHintsDedupToOneVariant) {
  // Profile noise can repeat a value; the hint pipeline must collapse it
  // rather than burn a speculative-variant slot on an identical guard.
  auto g = EwModel();
  CompileOptions options;
  options.likely_dim_values = {{"B", {512, 512}}, {"S", {1024, 1024}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  EXPECT_EQ(CountExactVariants(**exe), 1);
}

TEST(SpeculationTest, TruncationKeepsMostFrequentHint) {
  // Hints arrive ascending-by-frequency (most frequent last); speculation
  // builds combination k from each symbol's k-th-from-the-back value, so
  // with max_speculative_variants = 1 the most frequent combination must
  // be the one that survives truncation.
  auto g = EwModel();
  CompileOptions options;
  options.specialize.max_speculative_variants = 1;
  options.likely_dim_values = {{"B", {8, 512}}, {"S", {64, 1024}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  EXPECT_EQ(CountExactVariants(**exe), 1);

  auto hot = (*exe)->RunWithShapes({{512, 1024}});
  ASSERT_TRUE(hot.ok());
  bool used_exact = false;
  for (const auto& [name, count] : hot->profile.variant_counts) {
    if (name.find("exact_") != std::string::npos && count > 0) {
      used_exact = true;
    }
  }
  EXPECT_TRUE(used_exact) << hot->profile.ToString();

  // The rarer combination lost its slot: no exact variant admits it.
  auto rare = (*exe)->RunWithShapes({{8, 64}});
  ASSERT_TRUE(rare.ok());
  for (const auto& [name, count] : rare->profile.variant_counts) {
    EXPECT_EQ(name.find("exact_"), std::string::npos) << name;
  }
}

TEST(SpeculationTest, HintViolatingDivisibilityIsBlockedNotSpecialized) {
  auto g = EwModel();
  CompileOptions options;
  options.dim_divisors = {{"B", 4}};
  options.likely_dim_values = {{"B", {7, 512}}, {"S", {1024}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());

  // The contradiction was recorded, not silently dropped and not fatal.
  bool saw_blocked = false, saw_divisibility = false, saw_accepted = false;
  for (const ConstraintRecord& record : (*exe)->analysis().constraint_log()) {
    if (record.kind == "divisibility" && record.source == "user-hint") {
      saw_divisibility = true;
    }
    if (record.kind == "likely-value" &&
        record.detail.rfind("blocked: B=7", 0) == 0) {
      saw_blocked = true;
    }
    if (record.kind == "likely-value" &&
        record.detail.find("512") != std::string::npos) {
      saw_accepted = true;
    }
  }
  EXPECT_TRUE(saw_divisibility);
  EXPECT_TRUE(saw_blocked);
  EXPECT_TRUE(saw_accepted);

  // Only the consistent hint became a variant: B=512 speculated, B=7 not.
  EXPECT_EQ(CountExactVariants(**exe), 1);
  auto rare = (*exe)->RunWithShapes({{7, 1024}});
  ASSERT_TRUE(rare.ok());
  for (const auto& [name, count] : rare->profile.variant_counts) {
    EXPECT_EQ(name.find("exact_"), std::string::npos) << name;
  }
}

TEST(SpeculationTest, BlockedHintReasonLandsInConstraintDump) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("disc_spec_dump_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  auto g = EwModel();
  CompileOptions options;
  options.dump.dir = dir;
  options.dim_divisors = {{"B", 4}};
  options.likely_dim_values = {{"B", {7}}};
  auto exe = DiscCompiler::Compile(*g, {{"B", "S"}}, options);
  ASSERT_TRUE(exe.ok());
  auto json = ReadFileToString(dir + "/shape_constraints.json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("blocked: B=7 violates divisibility B % 4 == 0"),
            std::string::npos)
      << *json;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace disc
