// The async compilation subsystem: service semantics (priorities, dedup,
// cancellation, deadlines, futures), non-blocking serving through the
// fallback leg with bit-identical results, concurrency-safe hot-swap
// without stale launch plans, and the persistent artifact cache's warm
// restart / corruption / eviction behavior.
#include "compile_service/compile_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/async_engine.h"
#include "baselines/dynamic_engine.h"
#include "baselines/interpreter_engine.h"
#include "compile_service/profile_feedback.h"
#include "ir/builder.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace disc {
namespace {

namespace fs = std::filesystem;

class CacheDir {
 public:
  explicit CacheDir(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("disc_compile_service_" + name + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~CacheDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<Graph> EwModel(const std::string& name = "svc") {
  auto g = std::make_unique<Graph>(name);
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(x, x))});
  return g;
}

CompileJobRequest MakeRequest(const Graph* graph,
                              JobPriority priority = JobPriority::kPrefetch) {
  CompileJobRequest request;
  request.model_name = graph->name();
  request.graph = graph;
  request.labels = {{"B", "S"}};
  request.priority = priority;
  return request;
}

// ---------------------------------------------------------------------------
// Service core.

TEST(CompileServiceTest, SubmitCompilesAndResolvesFuture) {
  auto g = EwModel();
  CompileService service;
  CompileJobHandle handle = service.Submit(MakeRequest(g.get()));
  const CompileJobOutcome& outcome = handle.Wait();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_NE(outcome.executable, nullptr);
  EXPECT_FALSE(outcome.from_disk_cache);
  EXPECT_TRUE(outcome.executable->RunWithShapes({{8, 16}}).ok());
  EXPECT_EQ(service.stats().compiled, 1);
}

TEST(CompileServiceTest, InFlightJobsDedupByKey) {
  auto g = EwModel();
  CompileServiceOptions options;
  options.num_workers = 1;
  CompileService service(options);

  // Hold the single worker hostage so later submits stay queued.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto blocker = MakeRequest(g.get());
  blocker.model_name = "blocker";
  blocker.pre_compile_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  CompileJobHandle blocked = service.Submit(std::move(blocker));

  auto g2 = EwModel("deduped");
  CompileJobHandle first = service.Submit(MakeRequest(g2.get()));
  CompileJobHandle second = service.Submit(MakeRequest(g2.get()));
  EXPECT_EQ(first.job_id(), second.job_id());
  EXPECT_EQ(service.stats().deduplicated, 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.Drain();
  // One compile for the deduplicated pair; both handles see it.
  EXPECT_TRUE(first.Wait().status.ok());
  EXPECT_TRUE(second.Wait().status.ok());
  EXPECT_EQ(first.TryGet(), second.TryGet());
}

TEST(CompileServiceTest, PriorityQueueServesForegroundFirst) {
  auto g = EwModel();
  CompileServiceOptions options;
  options.num_workers = 1;
  CompileService service(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto blocker = MakeRequest(g.get());
  blocker.pre_compile_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  service.Submit(std::move(blocker));

  // Queue in worst order; distinct graphs so nothing dedups.
  auto g_pre = EwModel("prefetch");
  auto g_spec = EwModel("respec");
  auto g_fg = EwModel("foreground");
  service.Submit(MakeRequest(g_pre.get(), JobPriority::kPrefetch));
  service.Submit(MakeRequest(g_spec.get(), JobPriority::kRespecialize));
  service.Submit(MakeRequest(g_fg.get(), JobPriority::kForegroundMiss));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.Drain();

  // The timeline records dequeue order: foreground < respecialize <
  // prefetch regardless of submit order.
  double fg_start = -1, spec_start = -1, pre_start = -1;
  for (const JobTimelineEntry& e : service.JobTimeline()) {
    if (e.model == "foreground") fg_start = e.start_us;
    if (e.model == "respec") spec_start = e.start_us;
    if (e.model == "prefetch") pre_start = e.start_us;
  }
  ASSERT_GE(fg_start, 0.0);
  EXPECT_LT(fg_start, spec_start);
  EXPECT_LT(spec_start, pre_start);
}

TEST(CompileServiceTest, CancelledQueuedJobNeverCompiles) {
  auto g = EwModel();
  CompileServiceOptions options;
  options.num_workers = 1;
  CompileService service(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto blocker = MakeRequest(g.get());
  blocker.pre_compile_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  service.Submit(std::move(blocker));

  auto g2 = EwModel("cancelme");
  CompileJobHandle doomed = service.Submit(MakeRequest(g2.get()));
  doomed.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.Drain();
  const CompileJobOutcome& outcome = doomed.Wait();
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.executable, nullptr);
  EXPECT_EQ(service.stats().cancelled, 1);
  EXPECT_EQ(service.stats().compiled, 1);  // only the blocker
}

TEST(CompileServiceTest, QueuedPastDeadlineExpiresInsteadOfCompiling) {
  auto g = EwModel();
  CompileServiceOptions options;
  options.num_workers = 1;
  CompileService service(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto blocker = MakeRequest(g.get());
  blocker.pre_compile_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  service.Submit(std::move(blocker));

  auto g2 = EwModel("latecomer");
  auto late = MakeRequest(g2.get());
  late.deadline_ms = 0.001;  // expires while queued behind the blocker
  CompileJobHandle handle = service.Submit(std::move(late));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.Drain();
  EXPECT_EQ(handle.Wait().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_expired, 1);
}

// ---------------------------------------------------------------------------
// (a) Serving never blocks on an in-flight compile; results bit-identical.

TEST(CompileServiceTest, QueryDuringInFlightCompileServesFallback) {
  auto g = EwModel();
  CompileServiceOptions service_options;
  service_options.num_workers = 1;
  CompileService service(service_options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> compiling{false};

  AsyncEngineOptions options;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);
  // Intercept the engine's own prefetch job: Prepare submits it, we hold
  // the worker inside it.
  // (Prepare's request has no hook, so instead park the worker with a
  // blocker job submitted first.)
  auto blocker = MakeRequest(g.get());
  blocker.model_name = "blocker";
  blocker.pre_compile_hook = [&] {
    compiling.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  service.Submit(std::move(blocker));
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());

  // The worker is stuck; the engine's executable cannot be ready.
  Tensor in(DType::kF32, {4, 8});
  Rng rng(7);
  for (int64_t i = 0; i < in.num_elements(); ++i) {
    in.f32_data()[i] = rng.Normal();
  }
  InterpreterEngine reference(InterpreterProfile::PyTorch());
  ASSERT_TRUE(reference.Prepare(*g, {{"B", "S"}}).ok());
  auto want = reference.Execute({in});
  ASSERT_TRUE(want.ok());

  // Queries complete promptly on the fallback leg — no blocking on the
  // stuck compile — and the math is bit-identical to the interpreter.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
    auto got = engine.Execute({in});
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want->size());
    for (size_t o = 0; o < got->size(); ++o) {
      ASSERT_EQ((*got)[o].num_elements(), (*want)[o].num_elements());
      for (int64_t e = 0; e < (*got)[o].num_elements(); ++e) {
        EXPECT_EQ((*got)[o].f32_data()[e], (*want)[o].f32_data()[e]);
      }
    }
  }
  EXPECT_GE(engine.stats().fallback_queries, 3);
  EXPECT_EQ(engine.swaps(), 0);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  service.Drain();

  // Compiled executable picked up on a later query (atomic hot-swap), and
  // numerics stay bit-identical.
  EXPECT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_EQ(engine.swaps(), 1);
  auto compiled = engine.Execute({in});
  ASSERT_TRUE(compiled.ok());
  for (int64_t e = 0; e < (*compiled)[0].num_elements(); ++e) {
    EXPECT_EQ((*compiled)[0].f32_data()[e], (*want)[0].f32_data()[e]);
  }
  EXPECT_TRUE(compiling.load());
}

// ---------------------------------------------------------------------------
// (b) Hot-swap under concurrent Run: torn-read-free, no stale plans.

TEST(CompileServiceTest, HotSwapUnderConcurrentRunHasNoStalePlans) {
  auto g = EwModel();
  // Two executables of the same model, swapped repeatedly while 4 threads
  // Run. Each Run must see a coherent executable (its snapshot), and after
  // every swap the outgoing executable's launch-plan cache must be empty.
  auto exe_a = DiscCompiler::Compile(*g, {{"B", "S"}});
  auto exe_b = DiscCompiler::Compile(*g, {{"B", "S"}});
  ASSERT_TRUE(exe_a.ok() && exe_b.ok());
  std::shared_ptr<const Executable> a(std::move(*exe_a));
  std::shared_ptr<const Executable> b(std::move(*exe_b));

  ExecutableSlot slot;
  slot.Swap(a);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load()) {
        std::shared_ptr<const Executable> snapshot = slot.Acquire();
        ASSERT_NE(snapshot, nullptr);
        int64_t rows = 1 + static_cast<int64_t>(rng.Uniform() * 6);
        auto result = snapshot->RunWithShapes({{rows, 16}});
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ++runs;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::shared_ptr<const Executable> out = slot.Swap(i % 2 == 0 ? b : a);
    ASSERT_NE(out, nullptr);
    // The swapped-out executable has no memoized plans from its last life.
    // In-flight Runs against the old snapshot may repopulate entries
    // *after* this check — that is fine, they are keyed to that same
    // executable and cleared again on its next swap-out.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(runs.load(), 0);

  // Quiescent check: swap both out and verify cleared caches.
  slot.Swap(nullptr);
  EXPECT_EQ(a->plan_cache_stats().entries, 0);
  b->ClearPlanCache();
  EXPECT_EQ(b->plan_cache_stats().entries, 0);
}

// ---------------------------------------------------------------------------
// (c) Warm restart: second lifetime restores everything from disk.

TEST(CompileServiceTest, WarmRestartRestoresFromDiskWithZeroCompiles) {
  CacheDir dir("warm_restart");
  auto g1 = EwModel("model_one");
  auto g2 = EwModel("model_two");

  CompileServiceOptions options;
  options.cache.dir = dir.path();

  {
    CompileService first_life(options);
    auto h1 = first_life.Submit(MakeRequest(g1.get()));
    auto h2 = first_life.Submit(MakeRequest(g2.get()));
    EXPECT_TRUE(h1.Wait().status.ok());
    EXPECT_TRUE(h2.Wait().status.ok());
    EXPECT_EQ(first_life.stats().compiled, 2);
    EXPECT_EQ(first_life.cache().stats().stores, 2);
  }

  // Fresh service, same directory: every artifact restores from disk.
  CompileService second_life(options);
  auto h1 = second_life.Submit(MakeRequest(g1.get()));
  auto h2 = second_life.Submit(MakeRequest(g2.get()));
  const CompileJobOutcome& o1 = h1.Wait();
  const CompileJobOutcome& o2 = h2.Wait();
  ASSERT_TRUE(o1.status.ok() && o2.status.ok());
  EXPECT_TRUE(o1.from_disk_cache);
  EXPECT_TRUE(o2.from_disk_cache);
  EXPECT_EQ(second_life.stats().compiled, 0);
  EXPECT_EQ(second_life.stats().disk_hits, 2);
  EXPECT_TRUE(o1.executable->RunWithShapes({{8, 16}}).ok());

  // Different options = different key = not a hit.
  auto varied = MakeRequest(g1.get());
  varied.options.fusion.enable_stitch = false;
  auto h3 = second_life.Submit(std::move(varied));
  EXPECT_TRUE(h3.Wait().status.ok());
  EXPECT_EQ(second_life.stats().compiled, 1);
}

// ---------------------------------------------------------------------------
// (d) Corruption: quarantined and recompiled, never crashed on.

TEST(CompileServiceTest, CorruptedEntryIsQuarantinedAndRecompiled) {
  CacheDir dir("corruption");
  auto g = EwModel("fragile");
  CompileServiceOptions options;
  options.cache.dir = dir.path();

  {
    CompileService first_life(options);
    EXPECT_TRUE(first_life.Submit(MakeRequest(g.get())).Wait().status.ok());
  }

  // Truncate every entry file to garbage.
  int corrupted = 0;
  for (const auto& entry :
       fs::directory_iterator(dir.path() + "/entries")) {
    std::ofstream out(entry.path());
    out << "{ this is not json";
    ++corrupted;
  }
  ASSERT_EQ(corrupted, 1);

  CompileService second_life(options);
  const CompileJobOutcome& outcome =
      second_life.Submit(MakeRequest(g.get())).Wait();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_FALSE(outcome.from_disk_cache);
  EXPECT_EQ(second_life.stats().compiled, 1);
  EXPECT_EQ(second_life.cache().stats().quarantined, 1);
  // The bad entry was moved aside, not deleted. The key whose bytes just
  // lied is session-poisoned: the recompiled artifact is NOT re-stored by
  // the same lifetime (no trusting a key that served corruption).
  EXPECT_TRUE(fs::exists(dir.path() + "/quarantine"));
  EXPECT_EQ(std::distance(fs::directory_iterator(dir.path() + "/quarantine"),
                          fs::directory_iterator{}),
            1);

  // Third lifetime: a fresh session carries no session poison (bitrot
  // convicts the copy, not the artifact) — it compiles honestly and its
  // store sticks.
  {
    CompileService third_life(options);
    const CompileJobOutcome& third =
        third_life.Submit(MakeRequest(g.get())).Wait();
    ASSERT_TRUE(third.status.ok()) << third.status.ToString();
    EXPECT_FALSE(third.from_disk_cache);
    EXPECT_EQ(third_life.cache().stats().stores, 1);
  }

  // Fourth lifetime: the re-stored entry hits clean.
  CompileService fourth_life(options);
  EXPECT_TRUE(fourth_life.Submit(MakeRequest(g.get())).Wait().from_disk_cache);
}

// ---------------------------------------------------------------------------
// (e) Miscompile quarantine: poisoned keys are refused durably; corrupt
// loads are refused for the rest of the session.

TEST(CompileServiceTest, PoisonedKeyIsRefusedDurablyAcrossRestart) {
  CacheDir dir("poison");
  auto g = EwModel("poisoned");
  ArtifactCacheOptions cache_options;
  cache_options.dir = dir.path();
  CompileOptions copts;
  CacheKey key = CacheKey::Make(*g, {{"B", "S"}}, copts);

  PersistentArtifactCache cache(cache_options);
  ASSERT_TRUE(cache.Store(key, g->name(), copts, "report").ok());
  ASSERT_TRUE(cache.Lookup(key).has_value());

  ASSERT_TRUE(cache.Poison(key, "admission gate: divergence").ok());
  EXPECT_TRUE(cache.IsPoisoned(key));
  EXPECT_EQ(cache.stats().poisoned, 1);
  // Lookup refuses without touching the (quarantined) entry...
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_GE(cache.stats().poison_rejects, 1);
  // ...and Store refuses to re-create it under the same key.
  EXPECT_EQ(cache.Store(key, g->name(), copts, "report").code(),
            StatusCode::kFailedPrecondition);
  // The on-disk entry was moved aside (quarantine/ counts it), and the
  // poison list lives beside the manifest, not inside quarantine/.
  EXPECT_EQ(std::distance(fs::directory_iterator(dir.path() + "/quarantine"),
                          fs::directory_iterator{}),
            1);
  EXPECT_TRUE(fs::exists(dir.path() + "/poisoned.json"));

  // A warm restart reloads the poison list before anything else.
  PersistentArtifactCache revived(cache_options);
  EXPECT_TRUE(revived.IsPoisoned(key));
  EXPECT_FALSE(revived.Lookup(key).has_value());
  EXPECT_EQ(revived.Store(key, g->name(), copts, "report").code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompileServiceTest, BitrotLoadIsQuarantinedAndSessionPoisoned) {
  CacheDir dir("bitrot");
  auto g = EwModel("rotten");
  ArtifactCacheOptions cache_options;
  cache_options.dir = dir.path();
  CompileOptions copts;
  CacheKey key = CacheKey::Make(*g, {{"B", "S"}}, copts);
  {
    PersistentArtifactCache writer(cache_options);
    ASSERT_TRUE(writer.Store(key, g->name(), copts, "report").ok());
  }

  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("cache.bitrot=once").ok());
  PersistentArtifactCache cache(cache_options);
  // The flipped byte breaks the parse: miss, entry quarantined.
  EXPECT_FALSE(cache.Lookup(key).has_value());
  FailpointRegistry::Global().DisarmAll();
  EXPECT_EQ(cache.stats().quarantined, 1);

  // Session poison: the same key cannot be re-stored or re-served in this
  // process — a corrupt artifact must not come straight back under the
  // CacheKey that just failed.
  EXPECT_TRUE(cache.IsPoisoned(key));
  EXPECT_EQ(cache.Store(key, g->name(), copts, "report").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_GE(cache.stats().poison_rejects, 1);

  // Unlike Poison(), the session quarantine is NOT persisted: a fresh
  // process may re-store a good artifact under the key.
  PersistentArtifactCache fresh(cache_options);
  EXPECT_FALSE(fresh.IsPoisoned(key));
  EXPECT_TRUE(fresh.Store(key, g->name(), copts, "report").ok());
  EXPECT_TRUE(fresh.Lookup(key).has_value());
}

TEST(CompileServiceTest, ValidateJobClassRunsAtLowestPriority) {
  CompileService service;
  CompileJobHandle task = service.SubmitTask(
      "probe-task", JobPriority::kValidate,
      [] { return CompileJobOutcome(); });
  ASSERT_TRUE(task.valid());
  const CompileJobOutcome& outcome = task.Wait();
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.executable, nullptr);
  service.Drain();
  EXPECT_EQ(service.stats().tasks_submitted, 1);
  EXPECT_EQ(service.stats().tasks_completed, 1);
  EXPECT_EQ(service.stats().tasks_failed, 0);
  // Worker tasks are not compiles: compile accounting stays untouched.
  EXPECT_EQ(service.stats().compiled, 0);

  CompileJobHandle failing = service.SubmitTask(
      "doomed-task", JobPriority::kValidate,
      [] {
        CompileJobOutcome outcome;
        outcome.status = Status::DataLoss("caught");
        return outcome;
      });
  EXPECT_EQ(failing.Wait().status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(service.stats().tasks_failed, 1);
}

TEST(CompileServiceTest, CacheStoreFaultDegradesNotCrashes) {
  CacheDir dir("store_fault");
  auto g = EwModel("unstorable");
  CompileServiceOptions options;
  options.cache.dir = dir.path();
  CompileService service(options);

  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kAlways;
  FailpointRegistry::Global().Arm("compile_service.cache.store", spec);
  const CompileJobOutcome& outcome =
      service.Submit(MakeRequest(g.get())).Wait();
  FailpointRegistry::Global().Disarm("compile_service.cache.store");

  // The compile itself succeeded; only persistence was lost.
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(service.cache().stats().stores, 0);
}

TEST(CompileServiceTest, WorkerFaultFailsJobAndFallbackKeepsServing) {
  auto g = EwModel("doomed");
  CompileService service;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()));

  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kAlways;
  FailpointRegistry::Global().Arm("compile_service.worker", spec);
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());
  service.Drain();
  // The job died; queries still succeed via the fallback leg.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  }
  EXPECT_GE(engine.stats().fallback_queries, 3);
  FailpointRegistry::Global().Disarm("compile_service.worker");

  // Healed: the resubmitted foreground-miss job lands and gets adopted.
  service.Drain();
  EXPECT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_TRUE(engine.Query({{4, 8}}, DeviceSpec::T4()).ok());
  EXPECT_EQ(engine.swaps(), 1);
}

// ---------------------------------------------------------------------------
// LRU eviction by byte budget.

TEST(CompileServiceTest, EvictsLeastRecentlyUsedPastByteBudget) {
  CacheDir dir("eviction");
  std::vector<std::unique_ptr<Graph>> graphs;
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(EwModel("model_" + std::to_string(i)));
  }
  CompileServiceOptions options;
  options.cache.dir = dir.path();
  CompileService service(options);
  // Learn a single entry's size, then budget for ~2.
  EXPECT_TRUE(service.Submit(MakeRequest(graphs[0].get())).Wait().status.ok());
  int64_t entry_bytes = service.cache().stats().total_bytes;
  ASSERT_GT(entry_bytes, 0);

  ArtifactCacheOptions bounded;
  bounded.dir = dir.path();
  bounded.byte_budget = entry_bytes * 2 + entry_bytes / 2;
  PersistentArtifactCache cache(bounded);
  CompileOptions copts;
  for (int i = 1; i < 4; ++i) {
    CacheKey key = CacheKey::Make(*graphs[i], {{"B", "S"}}, copts);
    EXPECT_TRUE(
        cache.Store(key, graphs[i]->name(), copts, "report").ok());
  }
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_LE(cache.stats().total_bytes, bounded.byte_budget);
  // The newest entry always survives.
  CacheKey newest = CacheKey::Make(*graphs[3], {{"B", "S"}}, copts);
  EXPECT_TRUE(cache.Lookup(newest).has_value());
}

// ---------------------------------------------------------------------------
// Cache key + options serialization.

TEST(CompileServiceTest, OptionsJsonRoundTripsEverySemanticField) {
  CompileOptions options;
  options.run_graph_passes = false;
  options.fusion.enable_stitch = false;
  options.fusion.max_group_size = 17;
  options.specialize.max_speculative_variants = 5;
  options.specialize.enable_vectorization = false;
  options.likely_dim_values = {{"B", {4, 512}}, {"S", {64}}};
  options.dim_divisors = {{"B", 4}};

  CompileOptions back = OptionsFromJson(OptionsToJson(options));
  EXPECT_EQ(OptionsToJson(back).Serialize(),
            OptionsToJson(options).Serialize());
  EXPECT_EQ(back.likely_dim_values, options.likely_dim_values);
  EXPECT_EQ(back.dim_divisors, options.dim_divisors);
  EXPECT_EQ(back.fusion.max_group_size, 17);
}

TEST(CompileServiceTest, CacheKeySeparatesModelOptionsAndHints) {
  auto g1 = EwModel("one");
  auto g2 = EwModel("two");
  CompileOptions base;
  CacheKey k1 = CacheKey::Make(*g1, {{"B", "S"}}, base);

  EXPECT_EQ(k1.ToId(), CacheKey::Make(*g1, {{"B", "S"}}, base).ToId());
  EXPECT_NE(k1.ToId(), CacheKey::Make(*g2, {{"B", "S"}}, base).ToId());
  EXPECT_NE(k1.ToId(), CacheKey::Make(*g1, {{"B", "T"}}, base).ToId());

  CompileOptions tweaked = base;
  tweaked.fusion.enable_stitch = false;
  EXPECT_NE(k1.ToId(), CacheKey::Make(*g1, {{"B", "S"}}, tweaked).ToId());

  // Hints change the constraint signature, not the options hash.
  CompileOptions hinted = base;
  hinted.likely_dim_values = {{"B", {512}}};
  CacheKey k_hint = CacheKey::Make(*g1, {{"B", "S"}}, hinted);
  EXPECT_NE(k1.ToId(), k_hint.ToId());
  EXPECT_EQ(k1.options_hash, k_hint.options_hash);
  EXPECT_NE(k1.constraint_signature, k_hint.constraint_signature);
}

// ---------------------------------------------------------------------------
// Profile feedback.

TEST(CompileServiceTest, ProfileFeedbackEmitsMostFrequentLast) {
  ShapeProfileOptions options;
  options.min_observations = 4;
  ShapeProfileFeedback feedback(options);
  std::vector<std::vector<std::string>> labels = {{"B"}};
  for (int i = 0; i < 3; ++i) feedback.Observe(labels, {{512}});
  EXPECT_FALSE(feedback.MaybeRespecialize().has_value());
  feedback.Observe(labels, {{8}});

  auto hints = feedback.MaybeRespecialize();
  ASSERT_TRUE(hints.has_value());
  ASSERT_EQ(hints->size(), 1u);
  EXPECT_EQ((*hints)[0].first, "B");
  // Ascending frequency: 8 (1x) before 512 (3x) — the speculative-variant
  // builder takes from the back, so under truncation 512 wins.
  EXPECT_EQ((*hints)[0].second, (std::vector<int64_t>{8, 512}));
}

TEST(CompileServiceTest, ProfileShiftTriggersFreshRespecialization) {
  ShapeProfileOptions options;
  options.min_observations = 4;
  options.recheck_interval = 4;
  ShapeProfileFeedback feedback(options);
  std::vector<std::vector<std::string>> labels = {{"B"}};
  for (int i = 0; i < 4; ++i) feedback.Observe(labels, {{512}});
  ASSERT_TRUE(feedback.MaybeRespecialize().has_value());
  EXPECT_EQ(feedback.respecializations(), 1);

  // Stable profile: no re-emission.
  for (int i = 0; i < 8; ++i) feedback.Observe(labels, {{512}});
  EXPECT_FALSE(feedback.MaybeRespecialize().has_value());

  // Traffic shifts: 64 overtakes 512 — a fresh hint set is emitted.
  for (int i = 0; i < 40; ++i) feedback.Observe(labels, {{64}});
  auto shifted = feedback.MaybeRespecialize();
  ASSERT_TRUE(shifted.has_value());
  EXPECT_EQ((*shifted)[0].second.back(), 64);
  EXPECT_EQ(feedback.respecializations(), 2);
}

TEST(CompileServiceTest, FlatDistributionEmitsNothing) {
  ShapeProfileOptions options;
  options.min_observations = 4;
  options.confidence = 0.5;
  ShapeProfileFeedback feedback(options);
  std::vector<std::vector<std::string>> labels = {{"B"}};
  for (int64_t v : {1, 2, 3, 4, 5, 6, 7, 8}) {
    feedback.Observe(labels, {{v}});
  }
  EXPECT_FALSE(feedback.MaybeRespecialize().has_value());
}

// ---------------------------------------------------------------------------
// Engine integration: the DynamicCompilerEngine satellite.

TEST(CompileServiceTest, EngineRespecializesThroughServiceOffTheQueryThread) {
  auto g = EwModel();
  CompileService service;
  DynamicProfile profile = DynamicProfile::DiscWithSpeculation();
  DynamicCompilerEngine engine(profile);
  engine.set_compile_service(&service);
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());

  std::vector<std::vector<int64_t>> hot = {{512, 1024}};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.Query(hot, DeviceSpec::T4()).ok());
  }
  // The respecialization ran in the background, not on the query thread.
  EXPECT_EQ(engine.respecializations(), 1);
  service.Drain();
  EXPECT_EQ(service.stats().compiled, 1);

  // A later query adopts the specialized executable.
  auto before = engine.stats().compilations;
  ASSERT_TRUE(engine.Query(hot, DeviceSpec::T4()).ok());
  EXPECT_EQ(engine.stats().compilations, before + 1);

  // The traffic shifts; the profile respecializes again (the old one-shot
  // feedback_applied_ flag would have stopped after the first).
  std::vector<std::vector<int64_t>> shifted = {{64, 128}};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(engine.Query(shifted, DeviceSpec::T4()).ok());
  }
  service.Drain();
  ASSERT_TRUE(engine.Query(shifted, DeviceSpec::T4()).ok());
  EXPECT_GE(engine.respecializations(), 2);
}

TEST(CompileServiceTest, SyncCompileFallbackPreservesBlockingBehavior) {
  auto g = EwModel();
  CompileService service;
  DynamicProfile profile = DynamicProfile::DiscWithSpeculation();
  profile.sync_compile_fallback = true;
  DynamicCompilerEngine engine(profile);
  engine.set_compile_service(&service);
  ASSERT_TRUE(engine.Prepare(*g, {{"B", "S"}}).ok());
  std::vector<std::vector<int64_t>> hot = {{512, 1024}};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.Query(hot, DeviceSpec::T4()).ok());
  }
  // Recompiled synchronously on the query thread: visible immediately,
  // no service job involved.
  EXPECT_EQ(engine.stats().compilations, 2);
  EXPECT_EQ(service.stats().submitted, 0);
}

}  // namespace
}  // namespace disc
