// End-to-end observability demo: captures one Chrome-trace JSON covering
// every layer of the system —
//   * compile-phase spans (graph passes, shape analysis, fusion, kernels),
//   * per-run runtime spans (plan build vs. replay, kernel launches,
//     library calls, host shape ops) with plan-cache hit/miss annotations,
//   * serving per-request spans on the simulated clock (batch formation,
//     queue wait, execution),
// then prints the per-phase compile breakdown and the global metrics
// registry. Load the output in chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./build/examples/trace_inspect [out.trace.json] [--dump-dir=<dir>]
//                                    [--no-compile-cache] [--blame]
//                                    [--validation] [--decode]
//
// --dump-dir additionally writes the compilation-introspection artifacts
// (IR snapshots per pass, pipeline_summary.json, shape_constraints.json,
// fusion_decisions.json) next to the trace — the per-pass times in
// pipeline_summary.json are joined from the very trace being captured.
// --no-compile-cache runs the async-compile-service section without a
// persistent artifact cache (every job compiles, nothing is stored).
// --blame enables the shape-aware flight recorder, aggregates every
// completed request's phase ledger into a p99 tail-blame report (printed +
// exported as blame_report.json), re-parses the export and verifies the
// blame shares sum to 1.0 — the CI trace-smoke step greps the
// "blame_report=ok" line this prints.
// --validation turns on the differential admission gate for the async
// compile section: the compiled candidate is shadow-validated against the
// reference evaluator before the hot swap, and the deterministic verdict
// is exported as validation_report.json (re-parsed here; the CI
// trace-smoke step greps the "validation_report=ok" line).
// --decode switches to a decode-only capture: a synthetic decode trace
// replays through the continuous-batching scheduler on the compiled GPT
// step-batch model, the per-step timeline is dumped as
// decode_timeline.json, and the printed timeline is re-parsed from that
// very dump (the same reader disc_explain --decode uses). With
// DISC_FAILPOINTS arming runtime.alloc, memory pressure must surface as
// preemptions — not failures — which the CI chaos-smoke step greps from
// the "decode_timeline=ok" line alongside accounting=ok.
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "baselines/async_engine.h"
#include "baselines/baselines.h"
#include "baselines/dynamic_engine.h"
#include "baselines/fallback_chain.h"
#include "baselines/interpreter_engine.h"
#include "compiler/compiler.h"
#include "decode/decode_replay.h"
#include "decode/decode_scheduler.h"
#include "ir/builder.h"
#include "models/models.h"
#include "serving/serving.h"
#include "support/artifact_dump.h"
#include "support/blame.h"
#include "support/failpoint.h"
#include "support/flight_recorder.h"
#include "support/kernel_profile.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace disc;

// --decode: decode-only capture. The step spans, per-sequence ledger
// phases (including decode_wait), and KV-pool metrics all land in the
// same Chrome trace; the printed timeline round-trips through the
// decode_timeline.json dump so the reader the other tools use is
// exercised on a freshly written file.
static int RunDecodeDemo(const char* out_path) {
  TraceSession& session = TraceSession::Global();
  ModelConfig config;
  config.hidden = 32;
  config.trace_length = 4;
  Model model = BuildGptStepBatch(config);
  DynamicCompilerEngine engine(DynamicProfile::Disc());
  if (!engine.Prepare(*model.graph, model.input_dim_labels).ok()) {
    std::fprintf(stderr, "decode engine setup failed\n");
    return 1;
  }
  DecodeOptions options;
  options.max_batch = 8;
  options.kv.capacity_blocks = 96;
  options.kv.block_tokens = 16;
  options.kv.bytes_per_token = 2 * config.hidden * sizeof(float);
  auto requests = SyntheticDecodeStream(48, 40.0, 11);
  auto stats = SimulateDecode(&engine, GptStepBatchShapeFn(config.hidden),
                              requests, options, DeviceSpec::A10());
  if (!stats.ok()) {
    std::fprintf(stderr, "decode replay failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const char* timeline_path = "decode_timeline.json";
  Status wrote = stats->WriteTimelineJson(timeline_path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  // Print from the dump, not from the in-memory stats: what this renders
  // is exactly what a later `disc_explain --decode` will see.
  auto text = ReadFileToString(timeline_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto rendered = FormatDecodeTimelineJson(*text);
  if (!rendered.ok()) {
    std::fprintf(stderr, "decode_timeline=invalid: %s\n",
                 rendered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", rendered->c_str());
  std::printf("\nserving view: %s\n", stats->ToString().c_str());

  const ServingStats& sv = stats->serving;
  const bool accounting_ok =
      sv.submitted == sv.completed + sv.shed + sv.deadline_missed + sv.failed;
  std::printf(
      "decode_timeline=ok policy=%s steps=%lld completed=%lld/%lld "
      "preemptions=%lld resumes=%lld accounting=%s path=%s\n",
      stats->policy.c_str(), static_cast<long long>(sv.decode_steps),
      static_cast<long long>(sv.completed),
      static_cast<long long>(sv.submitted),
      static_cast<long long>(sv.preemptions),
      static_cast<long long>(sv.resumes), accounting_ok ? "ok" : "DRIFTED",
      timeline_path);

  session.Disable();
  Status written = session.WriteJson(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu trace events to %s\n", session.num_events(),
              out_path);
  std::string failpoints = FailpointRegistry::Global().Summary();
  if (!failpoints.empty()) {
    std::printf("\n== active failpoints (DISC_FAILPOINTS) ==\n%s",
                failpoints.c_str());
  }
  std::printf("\n== metrics registry ==\n%s",
              MetricsRegistry::Global().ToString().c_str());
  return accounting_ok ? 0 : 1;
}

int main(int argc, char** argv) {
  const char* out_path = "trace_inspect.trace.json";
  std::string dump_dir;
  bool no_compile_cache = false;
  bool blame = false;
  bool validation = false;
  bool decode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dump-dir=", 11) == 0) {
      dump_dir = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--no-compile-cache") == 0) {
      no_compile_cache = true;
    } else if (std::strcmp(argv[i], "--blame") == 0) {
      blame = true;
    } else if (std::strcmp(argv[i], "--validation") == 0) {
      validation = true;
    } else if (std::strcmp(argv[i], "--decode") == 0) {
      decode = true;
    } else {
      out_path = argv[i];
    }
  }
  TraceSession& session = TraceSession::Global();
  session.Enable();
  if (decode) return RunDecodeDemo(out_path);
  TailBlameAggregator blame_aggregator;
  if (blame) {
    FlightRecorder::Global().Enable();
    // Kernel ledger alongside the flight recorder: an outlier's trace id
    // joins to the per-kernel breakdown of the Run that served it.
    KernelProfileLedger::Global().Clear();
    KernelProfileLedger::Global().Enable();
  }

  // 1. Compile a dynamic-shape model: emits one span per pipeline phase
  // and per graph pass.
  ModelConfig config;
  Model model = BuildSeq2SeqStep(config);
  CompileOptions options;
  options.dump.dir = dump_dir;
  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels,
                                   options);
  if (!exe.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 exe.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled '%s': %s\n", model.name.c_str(),
              (*exe)->report().ToString().c_str());
  std::printf("per-phase breakdown:\n%s\n",
              (*exe)->report().PhaseBreakdown().c_str());
  if (!dump_dir.empty()) {
    std::printf("compilation artifacts dumped to %s/\n", dump_dir.c_str());
  }

  // 2. Replay a shape trace through the executable: the first run of each
  // signature builds its launch plan (plan=miss spans), repeats replay the
  // memoized plan (plan=hit) — both visible per run in the trace.
  int64_t run_failures = 0;
  for (const ShapeSet& shapes : model.trace) {
    auto r = (*exe)->RunWithShapes(shapes);
    if (!r.ok()) {
      // The raw executable has no fallback leg — under an armed
      // DISC_FAILPOINTS schedule these fail loudly but the demo keeps
      // going so the serving/breaker sections below stay reachable.
      if (++run_failures == 1) {
        std::fprintf(stderr, "run failed: %s\n",
                     r.status().ToString().c_str());
      }
    }
  }
  auto cache_stats = (*exe)->plan_cache_stats();
  std::printf("replayed %zu-query shape trace: %lld plan hits, %lld misses",
              model.trace.size(), static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses));
  if (run_failures > 0) {
    std::printf(" (%lld runs failed via injected faults)",
                static_cast<long long>(run_failures));
  }
  std::printf("\n");

  // 3. Serve a synthetic request stream: per-request spans (batch
  // formation -> queue wait -> execution) land on the simulated-clock
  // timeline, plus queue-depth and padding-waste histograms. Serving runs
  // through the DISC->interpreter fallback chain — fault-free it is a
  // pass-through, and with DISC_FAILPOINTS armed the degraded route and
  // breaker transitions land in the same trace (categories "failpoint"
  // and "serving.breaker").
  EngineFallbackChain chain(
      std::make_unique<DynamicCompilerEngine>(DynamicProfile::Disc()),
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()));
  if (!chain.Prepare(*model.graph, model.input_dim_labels).ok()) {
    std::fprintf(stderr, "engine setup failed\n");
    return 1;
  }
  Engine* engine_ptr = &chain;
  auto shape_fn = [&](int64_t batch, int64_t seq) {
    std::vector<std::vector<int64_t>> dims;
    for (const Value* in : model.graph->inputs()) {
      std::vector<int64_t> d = in->type().dims;
      // Bind the model's dynamic dims to the padded batch geometry.
      for (size_t i = 0; i < d.size(); ++i) {
        if (d[i] != kDynamicDim) continue;
        d[i] = i == 0 ? batch : seq;
      }
      dims.push_back(std::move(d));
    }
    return dims;
  };
  auto requests = SyntheticRequestStream(64, 25.0, 7);
  BatcherOptions batcher;
  auto stats = SimulateServing(engine_ptr, shape_fn, requests, batcher,
                               DeviceSpec::A10());
  if (!stats.ok()) {
    std::fprintf(stderr, "serving failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("served %zu requests: %s\n", requests.size(),
              stats->ToString().c_str());
  blame_aggregator.AddAll(stats->completed_requests);
  if (!chain.breaker_transitions().empty()) {
    std::printf("\n== circuit-breaker transitions (simulated clock) ==\n");
    for (const BreakerTransition& t : chain.breaker_transitions()) {
      std::printf("  t=%.0fus  %s -> %s  (%s)\n", t.sim_time_us,
                  BreakerStateName(t.from), BreakerStateName(t.to),
                  t.reason.c_str());
    }
  }

  // 4. Serve the same stream through the async compile service: Prepare
  // submits a prefetch job and returns immediately, early requests degrade
  // to the interpreter leg, and the compiled executable is hot-swapped in
  // when its job lands. With the artifact cache enabled (default; disable
  // via --no-compile-cache) the compiled artifact is persisted and a
  // re-run of this demo restores it from disk instead of compiling. The
  // job timeline below shows submit -> start -> finish per job with its
  // priority and cache verdict; the manifest summary lists what is on
  // disk. Service failpoints (compile_service.worker,
  // compile_service.cache.load|store) respect DISC_FAILPOINTS like every
  // other layer: a worker fault fails the job while the fallback leg keeps
  // serving, a store fault loses only persistence.
  CompileServiceOptions service_options;
  if (!no_compile_cache) {
    service_options.cache.dir = "trace_inspect.cache";
    std::filesystem::remove_all(service_options.cache.dir);
  }
  CompileService service(service_options);
  AsyncEngineOptions async_options;
  async_options.validate_adoptions = validation;
  AsyncCompileEngine async_engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      async_options);
  if (!async_engine.Prepare(*model.graph, model.input_dim_labels).ok()) {
    std::fprintf(stderr, "async engine setup failed\n");
    return 1;
  }
  auto async_stats = SimulateServing(&async_engine, shape_fn, requests,
                                     batcher, DeviceSpec::A10());
  if (!async_stats.ok()) {
    std::fprintf(stderr, "async serving failed: %s\n",
                 async_stats.status().ToString().c_str());
    return 1;
  }
  service.Drain();
  std::printf("\nasync-served %zu requests: %s\n", requests.size(),
              async_stats->ToString().c_str());
  blame_aggregator.AddAll(async_stats->completed_requests);
  // A second wave after the job landed: the hot-swapped executable serves
  // it compiled (degraded=0).
  auto second_wave = SimulateServing(&async_engine, shape_fn, requests,
                                     batcher, DeviceSpec::A10());
  if (second_wave.ok()) {
    std::printf("second wave %zu requests: %s\n", requests.size(),
                second_wave->ToString().c_str());
    blame_aggregator.AddAll(second_wave->completed_requests);
  }
  std::printf("  hot swaps=%lld  fallback queries=%lld\n",
              static_cast<long long>(async_engine.swaps()),
              static_cast<long long>(async_engine.stats().fallback_queries));

  // Admission-gate report (--validation): the candidate was
  // shadow-validated before the swap above; export the deterministic
  // verdict and re-parse it — what CI's trace-smoke step asserts.
  if (validation) {
    // The gate resolves opportunistically on the serving path (production
    // mode has no simulated clock to gate on): drain the service so the
    // low-priority validation task has finished, then one more query
    // adopts — or rejects — the candidate.
    service.Drain();
    async_engine.Query(shape_fn(8, 32), DeviceSpec::A10());
    const ValidationReport* vreport = async_engine.last_validation_report();
    if (vreport == nullptr) {
      std::fprintf(stderr, "validation_report=missing: the admission gate "
                           "never resolved a candidate\n");
      return 1;
    }
    const char* vreport_path = "validation_report.json";
    Status vwrote = vreport->WriteJsonFile(vreport_path);
    if (!vwrote.ok()) {
      std::fprintf(stderr, "%s\n", vwrote.ToString().c_str());
      return 1;
    }
    std::printf("\n== admission gate ==\n%s\n", vreport->Summary().c_str());
    std::printf("validation_report=ok verdict=%s probes=%lld "
                "validations_run=%lld caught=%lld path=%s\n",
                vreport->verdict(), static_cast<long long>(vreport->probes),
                static_cast<long long>(async_engine.validations_run()),
                static_cast<long long>(async_engine.validations_caught()),
                vreport_path);
  }
  std::printf("\n== compile service ==\n%s",
              service.JobTimelineString().c_str());
  ArtifactCacheStats cache_stats_svc = service.cache().stats();
  std::printf(
      "cache: hits=%lld misses=%lld stores=%lld evictions=%lld "
      "quarantined=%lld\n",
      static_cast<long long>(cache_stats_svc.hits),
      static_cast<long long>(cache_stats_svc.misses),
      static_cast<long long>(cache_stats_svc.stores),
      static_cast<long long>(cache_stats_svc.evictions),
      static_cast<long long>(cache_stats_svc.quarantined));
  std::printf("%s", service.cache().ManifestSummary().c_str());

  // 5. Tail-blame report (--blame): decompose p99 latency into the phase
  // ledger's causal segments, export blame_report.json through the
  // deterministic JSON writer, then re-parse the file and verify the
  // shares sum to 1.0 — what CI's trace-smoke step asserts.
  if (blame) {
    BlameReport report = blame_aggregator.Compute(99.0);
    std::printf("\n== tail-latency blame (p%.0f over %lld requests) ==\n%s",
                report.tail_percentile,
                static_cast<long long>(report.total_requests),
                report.ToString().c_str());
    const char* report_path = "blame_report.json";
    Status wrote = report.WriteJsonFile(report_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    auto text = ReadFileToString(report_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    double share_sum = 0.0;
    Status valid = ValidateBlameReportJson(*text, 1e-6, &share_sum);
    if (!valid.ok()) {
      std::fprintf(stderr, "blame_report=invalid: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    std::printf("blame_report=ok sum=%.6f tail_requests=%lld path=%s\n",
                share_sum, static_cast<long long>(report.tail_requests),
                report_path);
    std::printf("\n== flight recorder ==\n%s",
                FlightRecorder::Global().ToString().c_str());

    // Join each retained outlier to the kernel ledger's run records: the
    // same trace id keyed both captures, so the tail request's latency
    // decomposes one level further — into the kernels of its batch.
    KernelProfileLedger& kernel_ledger = KernelProfileLedger::Global();
    std::printf("\n== outlier kernel breakdown (trace-id join) ==\n");
    int64_t joined = 0;
    for (const FlightRecord& record : FlightRecorder::Global().Snapshot()) {
      std::vector<KernelProfileLedger::RunRecord> runs =
          kernel_ledger.RunsForTrace(record.trace_id);
      if (runs.empty()) continue;
      ++joined;
      std::printf("  trace_id=%llu:\n",
                  static_cast<unsigned long long>(record.trace_id));
      for (const auto& run : runs) {
        std::printf("    %s\n", run.ToString().c_str());
      }
    }
    if (joined == 0) {
      std::printf("  (no outlier trace ids found in the ledger ring — "
                  "outliers predate its capacity)\n");
    }
    std::printf("kernel_join=%lld outliers matched in run ring "
                "(ledger: %lld runs retained)\n",
                static_cast<long long>(joined),
                static_cast<long long>(kernel_ledger.stats().runs_retained));
    // Lifetime fence: entries hold kernel pointers into the engines'
    // executables, which die when this scope unwinds.
    kernel_ledger.Disable();
    kernel_ledger.Clear();
  }

  // 6. Export + metrics dump.
  session.Disable();
  Status written = session.WriteJson(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nwrote %zu trace events to %s (load in chrome://tracing or "
      "ui.perfetto.dev)\n",
      session.num_events(), out_path);
  std::string failpoints = FailpointRegistry::Global().Summary();
  if (!failpoints.empty()) {
    std::printf("\n== active failpoints (DISC_FAILPOINTS) ==\n%s",
                failpoints.c_str());
  }
  std::printf("\n== metrics registry ==\n%s",
              MetricsRegistry::Global().ToString().c_str());
  return 0;
}
