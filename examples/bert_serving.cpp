// Serving a BERT-style encoder under dynamic (batch, seq-len) traffic:
// compares DISC against PyTorch-eager and XLA archetypes on the same trace
// and prints per-query latency, showing compile stalls and steady-state
// behaviour side by side.
//
//   $ ./build/examples/bert_serving
#include <cstdio>

#include "baselines/baselines.h"
#include "models/models.h"

using namespace disc;

int main() {
  ModelConfig config;
  config.trace_length = 12;
  Model bert = BuildBert(config);
  const DeviceSpec device = DeviceSpec::A10();

  std::printf("BERT-style encoder (%lld nodes), %zu-query dynamic trace on %s\n\n",
              static_cast<long long>(bert.graph->num_nodes()),
              bert.trace.size(), device.name.c_str());

  for (const char* system : {"DISC", "PyTorch", "XLA"}) {
    auto engine = MakeBaseline(system);
    if (!engine.ok()) return 1;
    if (auto s = (*engine)->Prepare(*bert.graph, bert.input_dim_labels);
        !s.ok()) {
      std::fprintf(stderr, "%s prepare failed: %s\n", system,
                   s.ToString().c_str());
      return 1;
    }
    std::printf("-- %s --\n", system);
    for (size_t q = 0; q < bert.trace.size(); ++q) {
      auto timing = (*engine)->Query(bert.trace[q], device);
      if (!timing.ok()) return 1;
      std::printf("  query %2zu  shape [%lldx%lld]  total %10.1fus"
                  "  (device %8.1fus, host %6.1fus, compile %10.1fus)\n",
                  q, static_cast<long long>(bert.trace[q][0][0]),
                  static_cast<long long>(bert.trace[q][0][1]),
                  timing->total_us, timing->device_us, timing->host_us,
                  timing->compile_us);
    }
    std::printf("  engine compiled %lld time(s)\n\n",
                static_cast<long long>((*engine)->stats().compilations));
  }
  return 0;
}
