// Serving demo: a dynamic batcher in front of one simulated GPU, comparing
// padding policies that only a dynamic-shape compiler makes possible.
//
//   $ ./build/examples/serving_demo
#include <cstdio>

#include "baselines/baselines.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/rng.h"

using namespace disc;

int main() {
  const int64_t kHidden = 64;
  Graph graph("serve");
  GraphBuilder b(&graph);
  Rng rng(1);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  Tensor w(DType::kF32, {kHidden, kHidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  b.Output({b.Softmax(b.Gelu(b.MatMul(x, b.Constant(w))))});

  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  auto requests = SyntheticRequestStream(128, 8.0, 5);
  std::printf("%zu requests, Zipf sequence lengths, ~8us arrival gap (heavy load)\n\n",
              requests.size());

  for (PadPolicy policy :
       {PadPolicy::kBatchMax, PadPolicy::kBucketPow2, PadPolicy::kNone}) {
    auto engine = MakeBaseline("DISC");
    if (!engine.ok()) return 1;
    if (!(*engine)->Prepare(graph, {{"B", "S", ""}}).ok()) return 1;
    BatcherOptions options;
    options.pad = policy;
    auto stats = SimulateServing(engine->get(), shape_fn, requests, options,
                                 DeviceSpec::A10());
    if (!stats.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %s\n", PadPolicyName(policy),
                stats->ToString().c_str());
  }
  return 0;
}
