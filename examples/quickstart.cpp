// Quickstart: build a small dynamic-shape model, compile it once, run it on
// several shapes, and inspect what the compiler did.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/rng.h"

using namespace disc;

int main() {
  // 1. Build a graph with a dynamic batch dimension: y = softmax(x @ W + b).
  Graph graph("quickstart");
  GraphBuilder b(&graph);
  Rng rng(42);

  const int64_t kIn = 64;
  const int64_t kOut = 16;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kIn});
  Tensor w(DType::kF32, {kIn, kOut});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0.0f, 0.2f);
  }
  Tensor bias(DType::kF32, {kOut});
  Value* logits = b.Add(b.MatMul(x, b.Constant(w)), b.Constant(bias));
  b.Output({b.Softmax(logits)});

  // 2. Compile ONCE. The batch dim is the symbolic dimension "B".
  auto exe = DiscCompiler::Compile(graph, {{"B", ""}});
  if (!exe.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 exe.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled: %s\n\n", (*exe)->report().ToString().c_str());
  std::printf("%s\n", (*exe)->ToString().c_str());

  // 3. Run the same executable on several batch sizes — no recompilation.
  for (int64_t batch : {1, 3, 8, 100}) {
    Tensor input(DType::kF32, {batch, kIn});
    for (int64_t i = 0; i < input.num_elements(); ++i) {
      input.f32_data()[i] = rng.Normal();
    }
    auto result = (*exe)->Run({input});
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Sanity: each softmax row sums to ~1.
    const Tensor& out = result->outputs[0];
    double row0 = 0;
    for (int64_t c = 0; c < kOut; ++c) row0 += out.f32_data()[c];
    std::printf("batch=%-4lld out=%s row0 sum=%.4f | %s\n",
                static_cast<long long>(batch), out.TypeString().c_str(),
                row0, result->profile.ToString().c_str());
  }
  return 0;
}
