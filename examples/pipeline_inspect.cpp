// Pipeline inspection: walks one model through every stage of the compiler
// and prints what each stage produced — the graph before/after
// optimization, the symbolic shape constraint store, the fusion plan, and
// the compiled kernels with their specialization variants and guards.
//
//   $ ./build/examples/pipeline_inspect
#include <cstdio>

#include "compiler/compiler.h"
#include "fusion/fusion.h"
#include "ir/builder.h"
#include "opt/pass.h"
#include "shape/shape_analysis.h"

using namespace disc;

int main() {
  // A model exercising all the dynamic-shape machinery: flatten-reshape,
  // broadcast, softmax, and a library matmul.
  Graph graph("inspect");
  GraphBuilder b(&graph);
  const int64_t kHidden = 32;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  Tensor w(DType::kF32, {kHidden, kHidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = 0.01f * static_cast<float>(i % 17);
  }
  Value* flat = b.Reshape(x, {-1, kHidden});                 // [B*S, H]
  Value* proj = b.MatMul(flat, b.Constant(w));               // library op
  Value* act = b.Gelu(proj);                                 // fusable chain
  Value* probs = b.Softmax(act);                             // stitch target
  Value* back = b.ReshapeDynamic(probs, b.ShapeOf(x));       // [B, S, H]
  // A defensively emitted no-op broadcast the optimizer should remove.
  Value* out = b.BroadcastToDynamic(back, b.ShapeOf(x));
  b.Output({out});

  std::vector<std::vector<std::string>> labels = {{"B", "S", ""}};

  std::printf("=== 1. input graph (%lld nodes) ===\n%s\n\n",
              static_cast<long long>(graph.num_nodes()),
              graph.ToString().c_str());

  // Stage: graph optimization.
  auto optimized = graph.Clone();
  PassManager pm;
  AddStandardPasses(&pm);
  PassContext ctx;
  ctx.input_dim_labels = labels;
  if (!pm.RunToFixpoint(optimized.get(), ctx).ok()) return 1;
  std::printf("=== 2. after optimization (%lld nodes) ===\n%s\n\n",
              static_cast<long long>(optimized->num_nodes()),
              optimized->ToString().c_str());

  // Stage: symbolic shape analysis.
  ShapeAnalysis analysis(optimized.get(), labels);
  if (!analysis.Run().ok()) return 1;
  std::printf("=== 3. symbolic shapes ===\n");
  for (const Node* node : optimized->TopologicalOrder()) {
    std::printf("  %%%d %-12s : %s\n", node->output(0)->id(),
                OpName(node->kind()),
                SymShapeToString(analysis.GetShape(node->output(0))).c_str());
  }
  std::printf("%s\n\n", analysis.manager().ToString().c_str());

  // Stage: fusion planning.
  FusionPlanner planner(optimized.get(), &analysis);
  auto plan = planner.Plan();
  if (!plan.ok()) return 1;
  std::printf("=== 4. fusion plan ===\n%s\n", plan->ToString().c_str());

  // Stage: full compilation (kernels + variants + guards).
  auto exe = DiscCompiler::Compile(graph, labels);
  if (!exe.ok()) return 1;
  std::printf("=== 5. compiled module ===\n%s\n", (*exe)->ToString().c_str());

  // Stage: run two different shapes through the same executable.
  for (auto dims : {std::vector<int64_t>{2, 8, kHidden},
                    std::vector<int64_t>{5, 3, kHidden}}) {
    auto r = (*exe)->RunWithShapes({dims});
    if (!r.ok()) return 1;
    std::printf("run [%lldx%lldx%lld]: %s\n",
                static_cast<long long>(dims[0]),
                static_cast<long long>(dims[1]),
                static_cast<long long>(dims[2]),
                r->profile.ToString().c_str());
  }
  return 0;
}
