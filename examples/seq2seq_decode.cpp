// Autoregressive decoding: the KV-cache length grows by one every step, so
// every step has a brand-new shape — the worst case for compile-per-shape
// systems and the motivating scenario for dynamic-shape compilation.
//
// This example actually decodes (data mode): it runs the compiled
// executable step by step, appends the new K/V to the cache, and verifies
// the step outputs stay numerically identical to the reference evaluator.
//
//   $ ./build/examples/seq2seq_decode
#include <cstdio>

#include "compiler/compiler.h"
#include "ir/eval.h"
#include "models/models.h"
#include "support/rng.h"

using namespace disc;

int main() {
  ModelConfig config;
  Model model = BuildSeq2SeqStep(config);

  auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
  if (!exe.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 exe.status().ToString().c_str());
    return 1;
  }
  std::printf("decoder step compiled once: %s\n\n",
              (*exe)->report().ToString().c_str());

  const int64_t kSteps = 10;
  const int64_t kHidden = config.hidden;
  Rng rng(99);

  // Grow the KV cache one step at a time.
  std::vector<float> k_data;
  std::vector<float> v_data;
  double total_sim_us = 0;
  for (int64_t t = 1; t <= kSteps; ++t) {
    for (int64_t i = 0; i < kHidden; ++i) {
      k_data.push_back(rng.Normal());
      v_data.push_back(rng.Normal());
    }
    Tensor query(DType::kF32, {1, 1, kHidden});
    for (int64_t i = 0; i < kHidden; ++i) query.f32_data()[i] = rng.Normal();
    Tensor k = Tensor::F32({1, t, kHidden}, k_data);
    Tensor v = Tensor::F32({1, t, kHidden}, v_data);

    auto result = (*exe)->Run({query, k, v});
    if (!result.ok()) {
      std::fprintf(stderr, "step %lld failed: %s\n",
                   static_cast<long long>(t),
                   result.status().ToString().c_str());
      return 1;
    }
    // Cross-check against the reference evaluator.
    auto want = EvaluateGraph(*model.graph, {query, k, v});
    bool match = want.ok() &&
                 Tensor::AllClose(result->outputs[0], (*want)[0], 1e-3, 1e-4);
    total_sim_us += result->profile.device_time_us;
    std::printf("step %2lld  kv-len %2lld  sim %6.1fus  launches %lld  %s\n",
                static_cast<long long>(t), static_cast<long long>(t),
                result->profile.device_time_us,
                static_cast<long long>(result->profile.kernel_launches +
                                       result->profile.library_calls),
                match ? "numerics OK" : "NUMERICS MISMATCH");
    if (!match) return 1;
  }
  std::printf("\n%lld steps, %lld distinct shapes, 1 compilation, "
              "%.1fus simulated device time total\n",
              static_cast<long long>(kSteps), static_cast<long long>(kSteps),
              total_sim_us);
  return 0;
}
