// Machine-readable bench-regression checker.
//
// Diffs two BENCH_<id>.json files (written by bench::JsonReporter — schema
// in EXPERIMENTS.md) metric by metric and exits nonzero when any metric
// moved by more than the tolerance. CI runs this against baselines
// committed under bench/baselines/ to turn performance regressions into
// red builds.
//
//   $ bench_compare BASELINE.json CURRENT.json \
//         [--tolerance=0.10] [--exclude=wall.,compile.]
//
//   --tolerance=R   maximum allowed relative delta (default 0.10 = 10%).
//   --exclude=A,B   comma-separated name substrings: matching metrics are
//                   reported but never fail the run. Used for wall-clock
//                   metrics (machine-dependent) vs the deterministic
//                   simulated ones.
//
// A metric present in the baseline but missing from the current file is a
// hard failure (a silently dropped metric must not pass CI); metrics only
// in the current file are listed as informational.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support/artifact_dump.h"
#include "support/json.h"

using disc::JsonValue;

namespace {

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
};

bool LoadMetrics(const char* path, std::vector<Metric>* out,
                 std::string* bench_id) {
  auto text = disc::ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", path,
                 text.status().ToString().c_str());
    return false;
  }
  auto doc = disc::ParseJson(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", path,
                 doc.status().ToString().c_str());
    return false;
  }
  if (const JsonValue* id = doc->Find("bench");
      id != nullptr && id->is_string()) {
    *bench_id = id->as_string();
  }
  const JsonValue* metrics = doc->Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    std::fprintf(stderr, "error: %s has no \"metrics\" object\n", path);
    return false;
  }
  for (const auto& [name, entry] : metrics->as_object()) {
    Metric m;
    m.name = name;
    if (entry.is_number()) {
      m.value = entry.as_number();
    } else if (entry.is_object()) {
      const JsonValue* value = entry.Find("value");
      if (value == nullptr || !value->is_number()) continue;
      m.value = value->as_number();
      if (const JsonValue* unit = entry.Find("unit");
          unit != nullptr && unit->is_string()) {
        m.unit = unit->as_string();
      }
    } else {
      continue;
    }
    out->push_back(std::move(m));
  }
  return true;
}

bool Excluded(const std::string& name,
              const std::vector<std::string>& excludes) {
  for (const std::string& sub : excludes) {
    if (!sub.empty() && name.find(sub) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double tolerance = 0.10;
  std::vector<std::string> excludes;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strncmp(argv[i], "--exclude=", 10) == 0) {
      std::string list = argv[i] + 10;
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) excludes.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--tolerance=0.10] [--exclude=sub1,sub2]\n");
    return 2;
  }

  std::vector<Metric> baseline, current;
  std::string baseline_id, current_id;
  if (!LoadMetrics(baseline_path, &baseline, &baseline_id) ||
      !LoadMetrics(current_path, &current, &current_id)) {
    return 2;
  }
  if (!baseline_id.empty() && !current_id.empty() &&
      baseline_id != current_id) {
    std::fprintf(stderr, "error: comparing different benches: %s vs %s\n",
                 baseline_id.c_str(), current_id.c_str());
    return 2;
  }

  auto find = [](const std::vector<Metric>& metrics, const std::string& name)
      -> const Metric* {
    for (const Metric& m : metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };

  int failures = 0;
  int checked = 0;
  int skipped = 0;
  std::printf("bench_compare %s: %s vs %s (tolerance %.0f%%)\n",
              baseline_id.empty() ? "?" : baseline_id.c_str(), baseline_path,
              current_path, tolerance * 100);
  for (const Metric& base : baseline) {
    const Metric* cur = find(current, base.name);
    bool excluded = Excluded(base.name, excludes);
    if (cur == nullptr) {
      if (excluded) {
        std::printf("  SKIP  %-50s missing (excluded)\n", base.name.c_str());
        ++skipped;
        continue;
      }
      std::printf("  FAIL  %-50s missing from current results\n",
                  base.name.c_str());
      ++failures;
      continue;
    }
    // Relative delta against the baseline magnitude; exact-zero baselines
    // compare absolutely (any nonzero current value is a full delta).
    double denom = std::fabs(base.value);
    double delta = denom > 0 ? (cur->value - base.value) / denom
                             : (cur->value == 0 ? 0.0 : 1.0);
    const char* verdict;
    if (excluded) {
      verdict = "SKIP";
      ++skipped;
    } else if (std::fabs(delta) > tolerance) {
      verdict = "FAIL";
      ++failures;
    } else {
      verdict = "ok";
      ++checked;
    }
    std::printf("  %-5s %-50s %14.4f -> %14.4f  (%+.1f%%)%s%s\n", verdict,
                base.name.c_str(), base.value, cur->value, delta * 100,
                base.unit.empty() ? "" : " ", base.unit.c_str());
  }
  for (const Metric& cur : current) {
    if (find(baseline, cur.name) == nullptr) {
      std::printf("  NEW   %-50s %14.4f (no baseline)\n", cur.name.c_str(),
                  cur.value);
    }
  }
  std::printf("%d compared ok, %d excluded, %d failed\n", checked, skipped,
              failures);
  return failures > 0 ? 1 : 0;
}
