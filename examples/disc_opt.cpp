// disc_opt: a small mlir-opt-style driver over the textual IR.
//
// Reads a graph in the printer's format from a file (or stdin with "-"),
// runs the requested stage, and prints the result:
//
//   disc_opt FILE                 # optimize and print the graph
//   disc_opt FILE --plan          # also print the fusion plan
//   disc_opt FILE --kernels       # full compile; print kernels + variants
//   echo "graph g (%0: f32[?]) { ... }" | disc_opt -
//
// Dynamic input dims are labelled positionally d0, d1, ... per input so
// same-labelled dims across inputs stay distinct symbols (use the API for
// richer labelling).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "compiler/compiler.h"
#include "fusion/fusion.h"
#include "ir/parser.h"
#include "opt/pass.h"
#include "shape/shape_analysis.h"

using namespace disc;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE|- [--plan] [--kernels]\n", argv[0]);
    return 2;
  }
  std::string text;
  if (std::strcmp(argv[1], "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  bool want_plan = false;
  bool want_kernels = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan") == 0) want_plan = true;
    if (std::strcmp(argv[i], "--kernels") == 0) want_kernels = true;
  }

  auto graph = ParseGraph(text);
  if (!graph.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  PassManager pm;
  AddStandardPasses(&pm);
  PassContext ctx;
  if (auto s = pm.RunToFixpoint(graph->get(), ctx); !s.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*graph)->ToString().c_str());

  if (want_plan || want_kernels) {
    ShapeAnalysis analysis(graph->get());
    if (auto s = analysis.Run(); !s.ok()) {
      std::fprintf(stderr, "shape analysis failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    FusionPlanner planner(graph->get(), &analysis);
    auto plan = planner.Plan();
    if (!plan.ok()) {
      std::fprintf(stderr, "fusion failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("\n// fusion plan\n%s", plan->ToString().c_str());
  }
  if (want_kernels) {
    auto exe = DiscCompiler::Compile(**graph);
    if (!exe.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   exe.status().ToString().c_str());
      return 1;
    }
    std::printf("\n// compiled module\n%s", (*exe)->ToString().c_str());
  }
  return 0;
}
