// Compilation-introspection CLI: "why was (or wasn't) this pair fused,
// and which shape constraint decided it?"
//
// Compiles a named model with decision recording on, optionally dumps the
// full artifact set, and answers queries against the decision and
// constraint logs:
//
//   $ disc_explain --model=bert --dump-dir=/tmp/bert_dump
//   $ disc_explain --model=softmax --why-not-fused=3,5
//   $ disc_explain --model=softmax --static-shapes-only --why-not-fused=3,5
//   $ disc_explain --model=layernorm --decisions
//   $ disc_explain --model=bert --constraints
//   $ disc_explain --model=bert --memory-plan
//   $ disc_explain --model=gelu-glue --hotspots
//   $ disc_explain --model=gelu-glue --no-specialization --regret
//   $ disc_explain --model=softmax --no-compile-cache --validation
//   $ disc_explain --decode [--decode-json=decode_timeline.json]
//
// --decode prints the continuous-batching step timeline — per-step batch
// occupancy, joins/retires/preemptions, KV-pool blocks with the
// high-water step flagged — from a decode_timeline.json dump written by
// `trace_inspect --decode` or bench_decode_serving. When the dump does
// not exist yet, a small synthetic decode replay is run first to produce
// one, so the flag also works standalone.
//
// --hotspots replays the model's shape trace with the kernel observatory
// enabled and prints the per-(kernel, variant, signature) device-time
// ledger: top entries, the variant admission histogram, and the
// launch-bound vs memory-bound split. --regret additionally runs the
// counterfactual variant-regret audit (joined to the fusion decisions
// that formed each kernel's group). Both write kernel_profile.json.
//
// Node ids are the %N value ids shown in the IR dumps (module_*.ir) and in
// `--decisions` output. Models: the F2 micro workloads (softmax, layernorm,
// gelu-glue) plus the full model suite (mlp, bert, seq2seq-step, crnn,
// fastspeech2, dlrm, ...).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/dynamic_engine.h"
#include "compile_service/compile_service.h"
#include "compile_service/shadow_validate.h"
#include "compiler/compiler.h"
#include "decode/decode_replay.h"
#include "decode/decode_scheduler.h"
#include "ir/builder.h"
#include "models/models.h"
#include "support/artifact_dump.h"
#include "support/failpoint.h"
#include "support/kernel_profile.h"
#include "support/string_util.h"

namespace disc {
namespace {

struct Workload {
  std::string name;
  std::unique_ptr<Graph> graph;
  std::vector<std::vector<std::string>> labels;
  /// Per-query input shapes replayed by --hotspots / --regret.
  std::vector<ShapeSet> trace;
};

// Shape traffic for the micro workloads (the suite models carry their own
// serving trace): a hot power-of-two batch plus ragged stragglers, so the
// ledger shows both the vectorized and the fallback variants. The hot batch
// is large enough that the vec4 variant is modeled faster than generic —
// under --no-specialization the regret audit then names the denied variant
// with positive regret.
std::vector<ShapeSet> MicroTrace(int64_t inner) {
  std::vector<ShapeSet> trace;
  const int64_t batches[] = {1024, 1024, 1024, 1024, 1024, 1024,
                             768,  257,  1024, 431,  1024, 1024};
  for (int64_t b : batches) trace.push_back({{b, inner}});
  return trace;
}

// The F2 micro workloads, built exactly as bench_fusion_ablation does, so
// a why-not-fused answer here explains the corresponding F2 table row.
Workload MakeSoftmax() {
  Workload w;
  w.name = "softmax";
  w.graph = std::make_unique<Graph>("softmax");
  GraphBuilder b(w.graph.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  w.labels = {{"B", "S"}};
  w.trace = MicroTrace(128);
  return w;
}

Workload MakeLayerNorm() {
  Workload w;
  w.name = "layernorm";
  w.graph = std::make_unique<Graph>("layernorm");
  GraphBuilder b(w.graph.get());
  const int64_t kHidden = 512;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kHidden});
  Value* scale = b.Constant(Tensor::F32({kHidden},
                                        std::vector<float>(kHidden, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({kHidden},
                                       std::vector<float>(kHidden, 0.0f)));
  b.Output({b.LayerNorm(x, scale, bias)});
  w.labels = {{"B", ""}};
  w.trace = MicroTrace(kHidden);
  return w;
}

Workload MakeGeluGlue() {
  Workload w;
  w.name = "gelu-glue";
  w.graph = std::make_unique<Graph>("gelu_glue");
  GraphBuilder b(w.graph.get());
  const int64_t kHidden = 512;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kHidden});
  Value* h = b.Gelu(b.Add(x, b.Constant(Tensor::F32(
                                 {kHidden},
                                 std::vector<float>(kHidden, 0.5f)))));
  b.Output({b.Mul(h, b.ScalarF32(1.1f))});
  w.labels = {{"B", ""}};
  w.trace = MicroTrace(kHidden);
  return w;
}

Result<Workload> BuildWorkload(const std::string& name) {
  if (name == "softmax") return MakeSoftmax();
  if (name == "layernorm") return MakeLayerNorm();
  if (name == "gelu-glue") return MakeGeluGlue();
  ModelConfig config;
  for (Model& m : BuildModelSuite(config)) {
    if (m.name == name) {
      Workload w;
      w.name = m.name;
      w.graph = std::move(m.graph);
      w.labels = std::move(m.input_dim_labels);
      w.trace = std::move(m.trace);
      return w;
    }
  }
  return Status::InvalidArgument(
      "unknown model '" + name +
      "'; available: softmax, layernorm, gelu-glue, plus the model suite "
      "(mlp, bert, seq2seq-step, ...)");
}

// Finds the node whose output(0) value id is `id` (the %N in IR dumps).
const Node* FindNode(const Graph& graph, int id) {
  for (const Node* node : graph.nodes()) {
    if (!node->outputs().empty() && node->output(0)->id() == id) return node;
  }
  return nullptr;
}

// Explains one node's standing when no recorded decision covers the pair:
// the planner never *considered* it, and the reason is structural.
void ExplainStanding(const Executable& exe, const Node* node, int id) {
  if (node == nullptr) {
    std::printf("  %%%d: no such node in the optimized graph (note: the "
                "pass pipeline renumbers; read ids from module_optimized.ir "
                "or --decisions)\n",
                id);
    return;
  }
  auto it = exe.plan().group_of.find(node);
  if (it == exe.plan().group_of.end()) {
    const char* why = "not fusable compute";
    switch (node->op_class()) {
      case OpClass::kLibrary:
        why = "library op (matmul/conv dispatch to vendor kernels)";
        break;
      case OpClass::kShape:
        why = "host shape computation, never a device kernel";
        break;
      case OpClass::kCreation:
        why = "materialized constant, baked as a kernel parameter";
        break;
      default:
        break;
    }
    std::printf("  %%%d (%s): outside every fusion group — %s\n", id,
                OpName(node->kind()), why);
  } else {
    std::printf("  %%%d (%s): in group#%d (%s)\n", id, OpName(node->kind()),
                it->second,
                FusionKindName(exe.plan().groups[it->second].kind));
  }
}

void WhyNotFused(const Executable& exe, int a, int b) {
  const Node* na = FindNode(exe.graph(), a);
  const Node* nb = FindNode(exe.graph(), b);
  std::printf("why-not-fused %%%d, %%%d:\n", a, b);

  if (na != nullptr && nb != nullptr) {
    auto ga = exe.plan().group_of.find(na);
    auto gb = exe.plan().group_of.find(nb);
    if (ga != exe.plan().group_of.end() && gb != exe.plan().group_of.end() &&
        ga->second == gb->second) {
      std::printf("  they ARE fused: both in group#%d (%s)\n", ga->second,
                  FusionKindName(exe.plan().groups[ga->second].kind));
    }
  }
  auto decisions = exe.plan().DecisionsFor(a, b);
  if (!decisions.empty()) {
    for (const FusionDecision* d : decisions) {
      std::printf("  decision: %s\n", d->ToString().c_str());
    }
    return;
  }
  // No direct decision: the pair shares no producer->consumer edge, or one
  // side was structurally excluded before planning.
  std::printf("  no producer->consumer decision was recorded for this pair "
              "(fusion only merges adjacent nodes; non-adjacent nodes join "
              "a group only transitively). Standing of each node:\n");
  ExplainStanding(exe, na, a);
  ExplainStanding(exe, nb, b);
}

// Renders the symbolic arena layout: which values share which slot, the
// offset/size formula per slot, and why any value got its own fresh slot
// (the fallback set is where peak-memory wins are still on the table).
void PrintMemoryPlan(const Executable& exe) {
  const MemoryPlan& plan = exe.memory_plan();
  std::printf("== symbolic arena memory plan ==\n");
  if (!plan.planned) {
    std::printf("  (not planned — memory-planning phase did not run)\n\n");
    return;
  }
  std::printf("  %s\n", plan.ToString().c_str());
  std::printf("  peak bytes = %s\n", plan.peak_bytes.ToString().c_str());

  // Group values by slot so sharing is visible at a glance.
  std::vector<std::vector<int>> occupants(plan.slots.size());
  for (const auto& [value, slot] : plan.slot_of) {
    occupants[static_cast<size_t>(slot)].push_back(value->id());
  }
  for (size_t s = 0; s < plan.slots.size(); ++s) {
    std::sort(occupants[s].begin(), occupants[s].end());
    std::string ids;
    for (int id : occupants[s]) {
      if (!ids.empty()) ids += " ";
      ids += "%" + std::to_string(id);
    }
    std::printf("  slot#%zu @ %s : %s bytes  <- %s\n", s,
                plan.slots[s].offset.ToString().c_str(),
                plan.slots[s].bytes.ToString().c_str(), ids.c_str());
  }
  if (!plan.fallbacks.empty()) {
    std::printf("  fresh-slot fallbacks (no provable fit):\n");
    for (const ArenaFallback& f : plan.fallbacks) {
      std::printf("    %%%d (%s bytes): %s\n", f.value_id, f.bytes.c_str(),
                  f.reason.c_str());
    }
  }
  std::printf("\n");
}

// Replays the workload's shape trace with the kernel observatory enabled,
// prints the hotspot ledger (and, with `with_regret`, the counterfactual
// audit joined to fusion provenance), and writes kernel_profile.json.
int RunObservatory(const Executable& exe, const Workload& workload,
                   bool with_regret, const std::string& json_path) {
  KernelProfileLedger& ledger = KernelProfileLedger::Global();
  ledger.Clear();
  ledger.Enable();
  for (const ShapeSet& shapes : workload.trace) {
    auto run = exe.RunWithShapes(shapes);
    if (!run.ok()) {
      std::fprintf(stderr, "trace replay failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  std::vector<KernelProfileEntry> entries = ledger.Snapshot();
  std::vector<KernelProfileEntry> by_time = entries;
  std::sort(by_time.begin(), by_time.end(),
            [](const KernelProfileEntry& a, const KernelProfileEntry& b) {
              if (a.total_time_us != b.total_time_us) {
                return a.total_time_us > b.total_time_us;
              }
              return a.kernel < b.kernel;
            });

  std::printf("== kernel hotspots (%zu trace queries) ==\n",
              workload.trace.size());
  double device_total = 0.0, body_total = 0.0;
  int64_t launches = 0, memory_bound = 0;
  for (const KernelProfileEntry& e : entries) {
    device_total += e.total_time_us;
    body_total += e.total_body_us;
    launches += e.launches;
    memory_bound += e.memory_bound_launches;
  }
  const size_t top = std::min<size_t>(by_time.size(), 10);
  for (size_t i = 0; i < top; ++i) {
    const KernelProfileEntry& e = by_time[i];
    std::printf("  #%zu %5.1f%%  %s\n", i + 1,
                device_total > 0.0 ? 100.0 * e.total_time_us / device_total
                                   : 0.0,
                e.ToString().c_str());
  }

  std::printf("  variant admission (launches per compiled variant):\n");
  std::map<std::string, std::map<std::string, int64_t>> admission;
  for (const KernelProfileEntry& e : entries) {
    admission[e.kernel][e.variant] += e.launches;
  }
  for (const auto& [kernel, variants] : admission) {
    std::string line;
    for (const auto& [variant, count] : variants) {
      if (!line.empty()) line += "  ";
      line += StrFormat("%s:%lld", variant.c_str(),
                        static_cast<long long>(count));
    }
    std::printf("    %-24s %s\n", kernel.c_str(), line.c_str());
  }
  std::printf(
      "  split: %lld/%lld launches memory-bound; launch overhead %.1fus of "
      "%.1fus device (%.1f%%)\n",
      static_cast<long long>(memory_bound), static_cast<long long>(launches),
      device_total - body_total, device_total,
      device_total > 0.0 ? 100.0 * (device_total - body_total) / device_total
                         : 0.0);

  std::vector<KernelRegret> regrets;
  if (with_regret) {
    regrets = ledger.AuditRegret(DeviceSpec::A10());
    std::printf("\n== variant-regret audit (counterfactual: full "
                "specialization) ==\n");
    for (const KernelRegret& r : regrets) {
      std::printf("  %s\n", r.ToString().c_str());
      for (const VariantAssessment& a : r.candidates) {
        std::printf("    rank %d %-12s %s%s%s  modeled=%.2fus\n", a.rank,
                    a.variant.c_str(),
                    a.admissible ? "admissible" : "rejected  ",
                    a.compiled ? "" : " NOT-COMPILED",
                    a.selected ? " <selected>" : "", a.modeled_us);
      }
      // Fusion provenance: the decisions that formed this kernel's group —
      // regret names a variant choice, these name the fusion choices that
      // shaped the kernel it happened in.
      if (r.group >= 0 &&
          r.group < static_cast<int>(exe.plan().groups.size())) {
        std::set<int> member_ids;
        for (const Node* node : exe.plan().groups[r.group].nodes) {
          if (!node->outputs().empty()) {
            member_ids.insert(node->output(0)->id());
          }
        }
        for (const FusionDecision& d : exe.plan().decisions) {
          if (d.fused && member_ids.count(d.producer) &&
              member_ids.count(d.consumer)) {
            std::printf("    formed-by: %s\n", d.ToString().c_str());
          }
        }
      }
    }
    if (regrets.empty()) std::printf("  (no audited entries)\n");
  }

  Status written =
      WriteKernelProfileJson(json_path, entries, regrets, ledger.stats());
  if (!written.ok()) {
    std::fprintf(stderr, "writing %s failed: %s\n", json_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  double top_regret_share = regrets.empty() ? 0.0 : regrets[0].regret_share;
  // Greppable summary for the CI smoke (and for humans scanning logs).
  std::printf(
      "\nkernel_profile=ok path=%s entries=%zu regrets=%zu "
      "top_regret_share=%.4f\n\n",
      json_path.c_str(), entries.size(), regrets.size(), top_regret_share);
  ledger.Disable();
  ledger.Clear();
  return 0;
}

// Prints the decode step timeline from a decode_timeline.json dump. A
// missing dump is produced on the spot by a small synthetic replay (real
// compiled GPT step-batch model), so `disc_explain --decode` works both
// as a viewer for another tool's dump and standalone.
int ShowDecodeTimeline(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) {
    std::printf("no dump at %s — running a synthetic decode replay to "
                "produce one\n\n",
                path.c_str());
    ModelConfig config;
    config.hidden = 32;
    config.trace_length = 4;
    Model model = BuildGptStepBatch(config);
    DynamicCompilerEngine engine(DynamicProfile::Disc());
    if (!engine.Prepare(*model.graph, model.input_dim_labels).ok()) {
      std::fprintf(stderr, "decode engine setup failed\n");
      return 1;
    }
    DecodeOptions options;
    options.max_batch = 8;
    options.kv.capacity_blocks = 96;
    options.kv.block_tokens = 16;
    options.kv.bytes_per_token = 2 * config.hidden * sizeof(float);
    auto stats = SimulateDecode(&engine, GptStepBatchShapeFn(config.hidden),
                                SyntheticDecodeStream(48, 40.0, 11), options,
                                DeviceSpec::A10());
    if (!stats.ok()) {
      std::fprintf(stderr, "decode replay failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    Status wrote = stats->WriteTimelineJson(path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    text = ReadFileToString(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
  }
  auto rendered = FormatDecodeTimelineJson(*text);
  if (!rendered.ok()) {
    std::fprintf(stderr, "decode_timeline=invalid: %s\n",
                 rendered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", rendered->c_str());
  std::printf("\ndecode_timeline=ok path=%s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  std::string model_name = "softmax";
  std::string dump_dir;
  std::string filter;
  std::string why_pair;
  std::string cache_dir = "disc_explain.cache";
  bool no_compile_cache = false;
  bool static_only = false;
  bool list_decisions = false;
  bool list_constraints = false;
  bool show_memory_plan = false;
  bool show_hotspots = false;
  bool show_regret = false;
  bool no_specialization = false;
  bool run_validation = false;
  bool show_decode = false;
  std::string decode_json = "decode_timeline.json";
  std::string profile_json = "kernel_profile.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--model=", 8) == 0) {
      model_name = arg + 8;
    } else if (std::strncmp(arg, "--dump-dir=", 11) == 0) {
      dump_dir = arg + 11;
    } else if (std::strncmp(arg, "--dump-filter=", 14) == 0) {
      filter = arg + 14;
    } else if (std::strncmp(arg, "--why-not-fused=", 16) == 0) {
      why_pair = arg + 16;
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      cache_dir = arg + 12;
    } else if (std::strcmp(arg, "--no-compile-cache") == 0) {
      no_compile_cache = true;
    } else if (std::strcmp(arg, "--static-shapes-only") == 0) {
      static_only = true;
    } else if (std::strcmp(arg, "--decisions") == 0) {
      list_decisions = true;
    } else if (std::strcmp(arg, "--constraints") == 0) {
      list_constraints = true;
    } else if (std::strcmp(arg, "--memory-plan") == 0) {
      show_memory_plan = true;
    } else if (std::strcmp(arg, "--hotspots") == 0) {
      show_hotspots = true;
    } else if (std::strcmp(arg, "--regret") == 0) {
      show_regret = true;
    } else if (std::strcmp(arg, "--no-specialization") == 0) {
      no_specialization = true;
    } else if (std::strcmp(arg, "--validation") == 0) {
      run_validation = true;
    } else if (std::strcmp(arg, "--decode") == 0) {
      show_decode = true;
    } else if (std::strncmp(arg, "--decode-json=", 14) == 0) {
      show_decode = true;
      decode_json = arg + 14;
    } else if (std::strncmp(arg, "--profile-json=", 15) == 0) {
      profile_json = arg + 15;
    } else {
      std::fprintf(
          stderr,
          "usage: disc_explain --model=<name> [--dump-dir=<dir>]\n"
          "           [--dump-filter=<substr>] [--why-not-fused=A,B]\n"
          "           [--static-shapes-only] [--decisions] [--constraints]\n"
          "           [--memory-plan] [--hotspots] [--regret]\n"
          "           [--no-specialization] [--profile-json=<path>]\n"
          "           [--cache-dir=<dir>] [--no-compile-cache]\n"
          "           [--validation] [--decode] [--decode-json=<path>]\n");
      return 2;
    }
  }
  // --decode is a pure dump viewer: no model compile involved.
  if (show_decode) return ShowDecodeTimeline(decode_json);
  // Introspection artifacts are written only by a real compile, so a dump
  // request disables the artifact cache (a disk restore would silently
  // skip the dump).
  if (!dump_dir.empty()) no_compile_cache = true;

  auto workload = BuildWorkload(model_name);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 2;
  }

  CompileOptions options = static_only ? CompileOptions::NoSymbolicShapes()
                           : no_specialization
                               ? CompileOptions::NoSpecialization()
                               : CompileOptions();
  options.dump.dir = dump_dir;
  options.dump.filter = filter;

  // The compile goes through the service so a previous invocation's
  // artifact (same model, same options) restores from the persistent
  // cache instead of recompiling — the job timeline printed at the end
  // shows which happened.
  CompileServiceOptions service_options;
  if (!no_compile_cache) service_options.cache.dir = cache_dir;
  CompileService service(service_options);
  CompileJobRequest request;
  request.model_name = workload->name;
  request.graph = workload->graph.get();
  request.labels = workload->labels;
  request.options = options;
  request.priority = JobPriority::kForegroundMiss;
  CompileJobHandle job = service.Submit(std::move(request));
  const CompileJobOutcome& outcome = job.Wait();
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 outcome.status.ToString().c_str());
    // A failed compile with failpoints armed is usually the failpoint
    // firing — say so, with hit/fire counts.
    std::string failpoints = FailpointRegistry::Global().Summary();
    if (!failpoints.empty()) {
      std::fprintf(stderr, "active failpoints (DISC_FAILPOINTS):\n%s",
                   failpoints.c_str());
    }
    return 1;
  }
  std::shared_ptr<const Executable> exe = outcome.executable;

  std::printf("model %s%s: %zu nodes -> %zu fusion groups%s\n",
              workload->name.c_str(),
              static_only ? " (static-shapes-only ablation)" : "",
              exe->graph().nodes().size(), exe->plan().groups.size(),
              outcome.from_disk_cache ? " (restored from artifact cache)"
                                      : "");
  if (!dump_dir.empty()) {
    std::printf("artifacts dumped to %s/\n", dump_dir.c_str());
  }
  std::printf("\n");

  if (show_memory_plan) PrintMemoryPlan(*exe);

  if (list_decisions ||
      (why_pair.empty() && !list_constraints && !show_memory_plan &&
       !show_hotspots && !show_regret && !run_validation)) {
    std::printf("== fusion decisions (final verdict per considered pair) ==\n");
    for (const FusionDecision& d : exe->plan().decisions) {
      std::printf("  %s\n", d.ToString().c_str());
    }
    if (exe->plan().decisions.empty()) {
      std::printf("  (none — fusion disabled or nothing adjacent)\n");
    }
    std::printf("\n== fusion groups ==\n%s\n", exe->plan().ToString().c_str());
  }

  if (list_constraints) {
    std::printf("== excavated shape constraints (discovery order) ==\n");
    for (const ConstraintRecord& r : exe->analysis().constraint_log()) {
      std::printf("  %s\n", r.ToString().c_str());
    }
    std::printf("\n");
  }

  if (!why_pair.empty()) {
    size_t comma = why_pair.find(',');
    if (comma == std::string::npos) {
      std::fprintf(stderr, "--why-not-fused wants two ids: A,B\n");
      return 2;
    }
    // Accept both "3,5" and the IR-dump spelling "%3,%5".
    auto parse_id = [](std::string s) {
      if (!s.empty() && s[0] == '%') s.erase(0, 1);
      return std::atoi(s.c_str());
    };
    int a = parse_id(why_pair.substr(0, comma));
    int b = parse_id(why_pair.substr(comma + 1));
    WhyNotFused(*exe, a, b);
  }

  if (show_hotspots || show_regret) {
    int rc = RunObservatory(*exe, *workload, show_regret, profile_json);
    if (rc != 0) return rc;
  }

  // Differential validation: replay the workload's shape trace (plus the
  // guard-boundary probes derived from the compiled variants) through the
  // executable and the IR reference evaluator. With DISC_FAILPOINTS
  // arming kernel.miscompile / kernel.guard.mispredict at compile time,
  // this is the from-the-outside proof that the admission gate catches a
  // wrong executable before it could serve.
  if (run_validation) {
    ShadowValidator validator;
    std::vector<std::vector<std::vector<int64_t>>> observed(
        workload->trace.begin(), workload->trace.end());
    std::vector<ProbeBinding> probes = validator.BuildProbes(
        *exe, workload->labels, observed, {}, {});
    ValidationReport vreport =
        validator.Validate(*exe, /*incumbent=*/nullptr, *workload->graph,
                           probes, workload->name, outcome.key.ToId());
    std::printf("\n== differential validation (vs reference evaluator) ==\n");
    std::printf("%s\n", vreport.Summary().c_str());
    for (const ProbeOutcome& po : vreport.outcomes) {
      std::printf("  probe %-18s %-9s %s%s%s\n", po.signature.c_str(),
                  po.source.c_str(), po.outcome.c_str(),
                  po.detail.empty() ? "" : ": ", po.detail.c_str());
    }
  }

  std::printf("\n== compile service ==\n%s",
              service.JobTimelineString().c_str());
  ArtifactCacheStats cache_stats = service.cache().stats();
  std::printf(
      "cache: hits=%lld misses=%lld stores=%lld evictions=%lld "
      "quarantined=%lld\n",
      static_cast<long long>(cache_stats.hits),
      static_cast<long long>(cache_stats.misses),
      static_cast<long long>(cache_stats.stores),
      static_cast<long long>(cache_stats.evictions),
      static_cast<long long>(cache_stats.quarantined));
  std::printf("%s", service.cache().ManifestSummary().c_str());

  std::string failpoints = FailpointRegistry::Global().Summary();
  if (!failpoints.empty()) {
    std::printf("\n== active failpoints (DISC_FAILPOINTS) ==\n%s",
                failpoints.c_str());
  }
  return 0;
}
