// Experiment F4: cost vs shape diversity.
//
// A BERT trace with N distinct (batch, seq) shapes, N swept 1..256.
// DISC compiles once; XLA-style compilers compile per exact shape; bucketed
// engines (TensorRT-style) compile per bucket but pay padding on every
// query. The crossover the paper describes: static compilation wins at 1-2
// distinct shapes and loses progressively as diversity grows.
#include <cmath>

#include "bench/bench_util.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {
namespace {

// N distinct shapes, replayed round-robin for `queries` queries.
std::vector<ShapeSet> DiverseTrace(int64_t n_distinct, int64_t queries,
                                   int64_t hidden) {
  Rng rng(17);
  std::vector<ShapeSet> distinct;
  for (int64_t i = 0; i < n_distinct; ++i) {
    int64_t batch = rng.UniformInt(1, 8);
    int64_t seq = rng.UniformInt(16, 144);
    distinct.push_back({{batch, seq, hidden}});
  }
  std::vector<ShapeSet> trace;
  for (int64_t q = 0; q < queries; ++q) {
    trace.push_back(distinct[q % n_distinct]);
  }
  return trace;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::JsonReporter report("F4", argc, argv);
  std::printf("== F4: cumulative cost vs number of distinct shapes ==\n");
  std::printf("(BERT, 512-query trace; includes compile stalls)\n\n");

  ModelConfig config;
  Model bert = BuildBert(config);
  const int64_t kQueries = 512;
  const DeviceSpec device = DeviceSpec::T4();

  bench::Table table({"distinct shapes", "system", "compilations",
                      "compile stall", "exec total", "grand total",
                      "mean/query"});
  for (int64_t n : {1, 2, 8, 32, 128, 256}) {
    auto trace = DiverseTrace(n, kQueries, config.hidden);
    for (const char* system : {"DISC", "XLA", "TensorRT"}) {
      auto engine = MakeBaseline(system);
      DISC_CHECK_OK(engine.status());
      DISC_CHECK_OK((*engine)->Prepare(*bert.graph, bert.input_dim_labels));
      double compile_us = 0;
      double exec_us = 0;
      for (const ShapeSet& shapes : trace) {
        auto timing = (*engine)->Query(shapes, device);
        DISC_CHECK_OK(timing.status());
        compile_us += timing->compile_us;
        exec_us += timing->total_us - timing->compile_us;
      }
      double total = compile_us + exec_us;
      std::string prefix =
          "n" + std::to_string(n) + "." + system + ".";
      report.AddMetric(prefix + "grand_total_us", total, "us");
      report.AddMetric(prefix + "compile_stall_us", compile_us, "us");
      report.AddMetric(prefix + "compilations",
                       static_cast<double>((*engine)->stats().compilations),
                       "count");
      table.AddRow({std::to_string(n), system,
                    std::to_string((*engine)->stats().compilations),
                    bench::FmtUs(compile_us), bench::FmtUs(exec_us),
                    bench::FmtUs(total),
                    bench::FmtUs(total / static_cast<double>(kQueries))});
    }
  }
  table.Print();
  std::printf(
      "\nReading: DISC compiles exactly once (AOT); XLA's "
      "grows\nlinearly with distinct shapes; TensorRT caps compilations via "
      "bucketing\nbut pays padding on every query.\n");
  return 0;
}
