// Experiment T3: effectiveness of the symbolic shape layer.
//
// Per model: how many symbolic dims exist before/after constraint
// excavation (unification + constants), how many reshape product facts were
// recorded, what fusion that knowledge enabled, and the memory footprint
// DISC needs vs an interpreter materializing every intermediate.
#include <set>

#include "bench/bench_util.h"
#include "compiler/compiler.h"
#include "support/string_util.h"

int main() {
  using namespace disc;
  std::printf("== T3: symbolic shape analysis effectiveness ==\n\n");

  ModelConfig config;
  auto suite = BuildModelSuite(config);

  bench::Table shape_table({"model", "dynamic dims (all values)",
                            "distinct dim exprs", "symbols",
                            "classes after unify", "fused ops",
                            "loop/input/stitch groups"});
  bench::Table mem_table({"model", "shape", "DISC peak", "eager peak",
                          "reduction"});
  for (const Model& model : suite) {
    auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
    DISC_CHECK_OK(exe.status());
    const CompileReport& report = (*exe)->report();
    // The excavation metric: every dynamic dim of every intermediate is
    // expressed as one of a handful of symbolic expressions over the input
    // symbols — this is what lets fusion reason about thousands of dims.
    int64_t dynamic_dims = 0;
    std::set<std::string> distinct_exprs;
    const ShapeAnalysis& analysis = (*exe)->analysis();
    for (const Node* node : (*exe)->graph().TopologicalOrder()) {
      for (const Value* out : node->outputs()) {
        for (const DimExpr& d : analysis.GetShape(out)) {
          DimExpr canonical = analysis.manager().Canonicalize(d);
          if (canonical.IsConst()) continue;
          ++dynamic_dims;
          distinct_exprs.insert(canonical.ToString());
        }
      }
    }
    shape_table.AddRow(
        {model.name, std::to_string(dynamic_dims),
         std::to_string(distinct_exprs.size()),
         std::to_string(report.shapes.num_symbols),
         std::to_string(report.shapes.num_classes),
         std::to_string(report.fusion.num_fused_nodes),
         bench::Fmt("%.0f", (double)report.fusion.num_loop_groups) + "/" +
             bench::Fmt("%.0f", (double)report.fusion.num_input_groups) +
             "/" +
             bench::Fmt("%.0f", (double)report.fusion.num_stitch_groups)});

    auto disc_run = (*exe)->RunWithShapes(model.trace.front());
    DISC_CHECK_OK(disc_run.status());
    auto eager = MakeBaseline("PyTorch");
    DISC_CHECK_OK(eager.status());
    DISC_CHECK_OK((*eager)->Prepare(*model.graph, model.input_dim_labels));
    auto eager_run = (*eager)->Query(model.trace.front(), DeviceSpec::T4());
    DISC_CHECK_OK(eager_run.status());

    std::string shape_str;
    for (const auto& dims : model.trace.front()) {
      shape_str += "[" + Join(dims, "x") + "]";
    }
    double reduction = eager_run->peak_memory_bytes > 0
                           ? 1.0 - static_cast<double>(
                                       disc_run->profile.peak_memory_bytes) /
                                       static_cast<double>(
                                           eager_run->peak_memory_bytes)
                           : 0.0;
    mem_table.AddRow(
        {model.name, shape_str,
         bench::Fmt("%.2fMB", disc_run->profile.peak_memory_bytes / 1e6),
         bench::Fmt("%.2fMB", eager_run->peak_memory_bytes / 1e6),
         bench::Fmt("%.0f%%", reduction * 100)});
  }
  std::printf("-- constraint excavation & fusion enabled --\n");
  shape_table.Print();
  std::printf("\n-- peak intermediate memory (first trace shape) --\n");
  mem_table.Print();

  // Buffer planning + allocator behaviour across a changing-shape trace.
  std::printf("\n-- buffer planning & allocator reuse over the trace --\n");
  bench::Table buf_table({"model", "device values", "planned slots",
                          "alloc calls (8 queries)", "cache hits"});
  for (const Model& model : BuildModelSuite(config)) {
    auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
    DISC_CHECK_OK(exe.status());
    int64_t calls = 0;
    int64_t hits = 0;
    for (size_t q = 0; q < 8 && q < model.trace.size(); ++q) {
      auto r = (*exe)->RunWithShapes(model.trace[q]);
      DISC_CHECK_OK(r.status());
      calls += r->profile.alloc_calls;
      hits += r->profile.alloc_cache_hits;
    }
    buf_table.AddRow({model.name,
                      std::to_string((*exe)->report().buffer_values),
                      std::to_string((*exe)->report().buffer_slots),
                      std::to_string(calls), std::to_string(hits)});
  }
  buf_table.Print();
  return 0;
}
