// Extension experiment F15: continuous-batching decode serving.
//
// Autoregressive decode is where dynamic-shape compilation earns its keep:
// every iteration shifts the sequence lengths, so a pad-to-bucket static
// engine either recompiles per step shape or burns flops on padding, and a
// whole-request batcher holds finished sequences hostage to the longest
// member. This bench replays ONE realistic decode trace (short chat turns
// dominating, heavy tail of long generations) through three legs:
//   * continuous    — iteration-level scheduler on the DISC dynamic
//                     engine: join/retire/preempt every step, step shapes
//                     block-quantized so launch plans replay;
//   * whole-request — same dynamic engine, but batch membership fixed at
//                     launch and finished rows frozen until the batch
//                     drains (src/serving-style request batching);
//   * static-pow2   — whole-request batching on the bucketed static
//                     engine (XLA archetype): step shapes pad to powers
//                     of two, each new bucket charges a full static
//                     compile stall.
// Reported per leg: tokens/sec, p50/p99 time-between-tokens, per-step
// padding waste, steps, preemptions, plan-hit rate. The headline claims —
// continuous beats both baselines on tokens/sec AND padding waste — are
// DISC_CHECKed, so CI fails if the subsystem regresses into losing its
// own experiment. All metrics are simulated-clock deterministic and gated
// byte-stable against bench/baselines/BENCH_F15.json.
#include "baselines/dynamic_engine.h"
#include "baselines/static_engine.h"
#include "bench/bench_util.h"
#include "decode/decode_replay.h"
#include "decode/decode_scheduler.h"
#include "models/models.h"

namespace disc {
namespace {

struct LegResult {
  std::string name;
  DecodeStats stats;
};

LegResult RunLeg(const std::string& name, Engine* engine,
                 const ModelConfig& config,
                 const std::vector<DecodeRequest>& requests,
                 DecodePolicy policy, bool pad_pow2,
                 bench::JsonReporter* report) {
  DecodeOptions options;
  options.policy = policy;
  options.pad_pow2 = pad_pow2;
  options.max_batch = 8;
  // Sized for the whole-request leg's up-front reservation of each
  // member's FULL eventual footprint (prompt+decode, up to 192 tokens):
  // continuous needs far less at once — its high-water mark below shows
  // how much less.
  options.kv.capacity_blocks = 160;
  options.kv.block_tokens = 16;
  options.kv.bytes_per_token = 2 * config.hidden * sizeof(float);
  auto stats = SimulateDecode(engine, GptStepBatchShapeFn(config.hidden),
                              requests, options, DeviceSpec::A10());
  DISC_CHECK_OK(stats.status());
  const ServingStats& sv = stats->serving;
  DISC_CHECK_EQ(sv.completed, sv.submitted)
      << name << ": every sequence must finish for tokens/sec to compare";
  if (report != nullptr) {
    const std::string prefix = "decode." + name + ".";
    report->AddMetric(prefix + "tokens_per_sec", sv.tokens_per_sec, "tok/s");
    report->AddMetric(prefix + "p50_tbt_us", sv.p50_tbt_us, "us");
    report->AddMetric(prefix + "p99_tbt_us", sv.p99_tbt_us, "us");
    report->AddMetric(prefix + "padding_waste_pct",
                      100.0 * sv.step_padding_waste, "%");
    report->AddMetric(prefix + "steps", static_cast<double>(sv.decode_steps),
                      "steps");
    report->AddMetric(prefix + "preemptions",
                      static_cast<double>(sv.preemptions), "events");
    report->AddMetric(prefix + "plan_hit_rate", sv.plan_hit_rate, "ratio");
    report->AddMetric(prefix + "kv_high_water_blocks",
                      static_cast<double>(sv.kv_high_water_blocks), "blocks");
  }
  return {name, std::move(*stats)};
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F15", argc, argv);
  report.AddMeta("device", "simulated A10");
  report.AddMeta("workload", "96-request synthetic decode trace, seed 17");
  std::printf("== F15 (extension): continuous-batching decode serving ==\n\n");

  ModelConfig config;
  config.hidden = 32;
  config.trace_length = 4;
  auto requests = SyntheticDecodeStream(/*count=*/96, /*mean_gap_us=*/40.0,
                                        /*seed=*/17);

  std::vector<LegResult> legs;
  {
    Model model = BuildGptStepBatch(config);
    DynamicCompilerEngine engine(DynamicProfile::Disc());
    DISC_CHECK_OK(engine.Prepare(*model.graph, model.input_dim_labels));
    legs.push_back(RunLeg("continuous", &engine, config, requests,
                          DecodePolicy::kContinuous, /*pad_pow2=*/false,
                          &report));
  }
  {
    Model model = BuildGptStepBatch(config);
    DynamicCompilerEngine engine(DynamicProfile::Disc());
    DISC_CHECK_OK(engine.Prepare(*model.graph, model.input_dim_labels));
    legs.push_back(RunLeg("whole_request", &engine, config, requests,
                          DecodePolicy::kWholeRequest, /*pad_pow2=*/false,
                          &report));
  }
  {
    Model model = BuildGptStepBatch(config);
    StaticProfile profile = StaticProfile::Xla();
    profile.name = "XLA-pow2";
    profile.bucketing = true;
    StaticCompilerEngine engine(profile);
    DISC_CHECK_OK(engine.Prepare(*model.graph, model.input_dim_labels));
    legs.push_back(RunLeg("static_pow2", &engine, config, requests,
                          DecodePolicy::kWholeRequest, /*pad_pow2=*/true,
                          &report));
  }

  bench::Table table({"leg", "tok/s", "p50 tbt", "p99 tbt", "pad waste",
                      "steps", "preempt", "plan hits", "kv high-water"});
  for (const LegResult& leg : legs) {
    const ServingStats& sv = leg.stats.serving;
    table.AddRow({leg.name, bench::Fmt("%.0f", sv.tokens_per_sec),
                  bench::FmtUs(sv.p50_tbt_us), bench::FmtUs(sv.p99_tbt_us),
                  bench::Fmt("%.1f%%", 100.0 * sv.step_padding_waste),
                  std::to_string(sv.decode_steps),
                  std::to_string(sv.preemptions),
                  bench::Fmt("%.0f%%", 100.0 * sv.plan_hit_rate),
                  std::to_string(sv.kv_high_water_blocks)});
  }
  table.Print();

  const ServingStats& cont = legs[0].stats.serving;
  const ServingStats& whole = legs[1].stats.serving;
  const ServingStats& stat = legs[2].stats.serving;
  // The experiment's claims, enforced: losing either headline is a bug in
  // the scheduler (or an accidental gift to a baseline), not a new result.
  DISC_CHECK_GT(cont.tokens_per_sec, whole.tokens_per_sec)
      << "continuous must out-throughput whole-request batching";
  DISC_CHECK_GT(cont.tokens_per_sec, stat.tokens_per_sec)
      << "continuous must out-throughput the static bucketed engine";
  DISC_CHECK_LT(cont.step_padding_waste, whole.step_padding_waste)
      << "continuous must waste less padding than whole-request batching";
  DISC_CHECK_LT(cont.step_padding_waste, stat.step_padding_waste)
      << "continuous must waste less padding than pow2 bucketing";
  report.AddMetric("decode.continuous_vs_whole_speedup",
                   cont.tokens_per_sec / whole.tokens_per_sec, "x");
  report.AddMetric("decode.continuous_vs_static_speedup",
                   cont.tokens_per_sec / stat.tokens_per_sec, "x");

  std::printf(
      "\nReading: per-step rescheduling keeps the batch full of LIVE rows\n"
      "(finished sequences retire immediately, arrivals join mid-flight),\n"
      "so tokens/sec rises while per-step padding falls. Block-quantized\n"
      "step signatures keep the launch-plan cache warm — the dynamic\n"
      "engine pays no per-shape recompiles — while the pow2-bucketed\n"
      "static engine charges a compile stall per new bucket and drags\n"
      "every row to the bucket grid. p99 time-between-tokens is the\n"
      "client-visible cost of batching policy: whole-request batching\n"
      "stalls new arrivals behind the longest member.\n");
  return 0;
}
