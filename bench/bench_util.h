// Shared helpers for the experiment harnesses (table printing, trace
// replay, percentile math). Each bench binary regenerates one table/figure
// from DESIGN.md §4 and prints it in a paper-style layout.
#ifndef DISC_BENCH_BENCH_UTIL_H_
#define DISC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "models/models.h"
#include "support/logging.h"
#include "support/trace.h"

namespace disc {
namespace bench {

/// \brief Handles a `--trace=<file>` command-line flag: when present,
/// enables the global TraceSession for the lifetime of the object and
/// writes the Chrome-trace JSON at scope exit (end of main).
///
///   int main(int argc, char** argv) {
///     bench::TraceFlag trace_flag(argc, argv);
///     ...
///   }
class TraceFlag {
 public:
  TraceFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) path_ = argv[i] + 8;
    }
    if (!path_.empty()) TraceSession::Global().Enable();
  }

  ~TraceFlag() {
    if (path_.empty()) return;
    TraceSession& session = TraceSession::Global();
    session.Disable();
    Status status = session.WriteJson(path_);
    if (status.ok()) {
      std::printf("\ntrace written to %s (%zu events, %lld dropped)\n",
                  path_.c_str(), session.num_events(),
                  static_cast<long long>(session.dropped_events()));
    } else {
      std::fprintf(stderr, "failed to write trace: %s\n",
                   status.ToString().c_str());
    }
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtUs(double us) {
  if (us >= 1e6) return Fmt("%.2fs", us / 1e6);
  if (us >= 1e3) return Fmt("%.2fms", us / 1e3);
  return Fmt("%.1fus", us);
}

/// Replays a model's trace on one engine; returns per-query total latency.
/// `skip_warmup` drops the first `warmup` queries from the returned vector
/// (but they are still issued — caches warm up).
inline Result<std::vector<double>> ReplayTrace(Engine* engine,
                                               const Model& model,
                                               const DeviceSpec& device,
                                               size_t warmup = 0) {
  DISC_RETURN_IF_ERROR(engine->Prepare(*model.graph, model.input_dim_labels));
  std::vector<double> latencies;
  for (size_t q = 0; q < model.trace.size(); ++q) {
    DISC_ASSIGN_OR_RETURN(EngineTiming timing,
                          engine->Query(model.trace[q], device));
    if (q >= warmup) latencies.push_back(timing.total_us);
  }
  return latencies;
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace bench
}  // namespace disc

#endif  // DISC_BENCH_BENCH_UTIL_H_
