// Shared helpers for the experiment harnesses (table printing, trace
// replay, percentile math). Each bench binary regenerates one table/figure
// from DESIGN.md §4 and prints it in a paper-style layout.
#ifndef DISC_BENCH_BENCH_UTIL_H_
#define DISC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "models/models.h"
#include "support/artifact_dump.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/trace.h"

namespace disc {
namespace bench {

/// \brief Handles a `--trace=<file>` command-line flag: when present,
/// enables the global TraceSession for the lifetime of the object and
/// writes the Chrome-trace JSON at scope exit (end of main).
///
///   int main(int argc, char** argv) {
///     bench::TraceFlag trace_flag(argc, argv);
///     ...
///   }
class TraceFlag {
 public:
  TraceFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) path_ = argv[i] + 8;
    }
    if (!path_.empty()) TraceSession::Global().Enable();
  }

  ~TraceFlag() {
    if (path_.empty()) return;
    TraceSession& session = TraceSession::Global();
    session.Disable();
    Status status = session.WriteJson(path_);
    if (status.ok()) {
      std::printf("\ntrace written to %s (%zu events, %lld dropped)\n",
                  path_.c_str(), session.num_events(),
                  static_cast<long long>(session.dropped_events()));
    } else {
      std::fprintf(stderr, "failed to write trace: %s\n",
                   status.ToString().c_str());
    }
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

/// \brief Machine-readable result sink shared by every bench binary: at
/// scope exit (end of main) writes `BENCH_<id>.json` — or the path given
/// by `--json-out=<file>` — with every recorded metric. The schema is
/// documented in EXPERIMENTS.md; `examples/bench_compare.cpp` diffs two
/// such files for CI regression gating.
///
/// Metric-name convention: purely simulated (deterministic) metrics use
/// plain dotted names (`softmax.dynamic.kStitch.device_us`); wall-clock
/// metrics carry a `wall.` or `compile.` prefix so CI can exclude them
/// from hard-fail comparison (`bench_compare --exclude=wall.,compile.`).
///
///   int main(int argc, char** argv) {
///     bench::JsonReporter report("F2", argc, argv);
///     report.AddMetric("softmax.kStitch.device_us", us, "us");
///     ...
///   }
class JsonReporter {
 public:
  JsonReporter(std::string bench_id, int argc, char** argv)
      : bench_id_(std::move(bench_id)), path_("BENCH_" + bench_id_ + ".json") {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json-out=", 11) == 0) path_ = argv[i] + 11;
    }
  }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { (void)Write(); }

  /// \brief Records one scalar result. Re-adding a name overwrites (last
  /// value wins — convenient for loops that refine an estimate).
  void AddMetric(const std::string& name, double value,
                 const std::string& unit = "") {
    JsonValue::Object metric;
    metric.emplace("value", JsonValue(value));
    if (!unit.empty()) metric.emplace("unit", JsonValue(unit));
    metrics_[name] = JsonValue(std::move(metric));
  }

  /// \brief Records a free-form string fact (configuration, not compared).
  void AddMeta(const std::string& key, const std::string& value) {
    meta_[key] = JsonValue(value);
  }

  const std::string& path() const { return path_; }

  Status Write() const {
    JsonValue::Object doc;
    doc.emplace("bench", JsonValue(bench_id_));
    doc.emplace("schema_version", JsonValue(static_cast<int64_t>(1)));
    if (!meta_.empty()) doc.emplace("meta", JsonValue(meta_));
    doc.emplace("metrics", JsonValue(metrics_));
    Status status =
        WriteStringToFile(path_, JsonValue(std::move(doc)).SerializePretty());
    if (status.ok()) {
      std::printf("\nresults written to %s (%zu metrics)\n", path_.c_str(),
                  metrics_.size());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", path_.c_str(),
                   status.ToString().c_str());
    }
    return status;
  }

 private:
  std::string bench_id_;
  std::string path_;
  JsonValue::Object metrics_;  // sorted by name -> deterministic output
  JsonValue::Object meta_;
};

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtUs(double us) {
  if (us >= 1e6) return Fmt("%.2fs", us / 1e6);
  if (us >= 1e3) return Fmt("%.2fms", us / 1e3);
  return Fmt("%.1fus", us);
}

/// Replays a model's trace on one engine; returns per-query total latency.
/// `skip_warmup` drops the first `warmup` queries from the returned vector
/// (but they are still issued — caches warm up).
inline Result<std::vector<double>> ReplayTrace(Engine* engine,
                                               const Model& model,
                                               const DeviceSpec& device,
                                               size_t warmup = 0) {
  DISC_RETURN_IF_ERROR(engine->Prepare(*model.graph, model.input_dim_labels));
  std::vector<double> latencies;
  for (size_t q = 0; q < model.trace.size(); ++q) {
    DISC_ASSIGN_OR_RETURN(EngineTiming timing,
                          engine->Query(model.trace[q], device));
    if (q >= warmup) latencies.push_back(timing.total_us);
  }
  return latencies;
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace bench
}  // namespace disc

#endif  // DISC_BENCH_BENCH_UTIL_H_
