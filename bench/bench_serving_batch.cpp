// Extension experiment F8: dynamic batching under load.
//
// A Zipf-length request stream is served by a dynamic batcher in front of
// one simulated GPU. Padding policy interacts with the engine's shape
// flexibility:
//   * DISC + batch-max padding — pad only to each batch's longest request
//     (any (B, S) compiles to nothing new);
//   * TensorRT-style + pow2 buckets — the engine only has kernels on the
//     bucket grid, so every batch pads up to powers of two;
//   * PyTorch eager, no batching — the latency-oriented default.
// Reported: latency percentiles (queueing + execution), throughput, and
// padding waste.
#include "baselines/baselines.h"
#include "bench/bench_util.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/rng.h"

namespace disc {
namespace {

std::unique_ptr<Graph> EncoderBlock(int64_t hidden) {
  auto g = std::make_unique<Graph>("encoder");
  GraphBuilder b(g.get());
  Rng rng(4);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, hidden});
  Tensor w(DType::kF32, {hidden, hidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  Value* h = b.Gelu(b.MatMul(x, b.Constant(w)));
  Tensor w2(DType::kF32, {hidden, hidden});
  for (int64_t i = 0; i < w2.num_elements(); ++i) {
    w2.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  h = b.Add(h, b.MatMul(h, b.Constant(w2)));
  Value* scale = b.Constant(Tensor::F32({hidden},
                                        std::vector<float>(hidden, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({hidden},
                                       std::vector<float>(hidden, 0.0f)));
  b.Output({b.LayerNorm(h, scale, bias)});
  return g;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::JsonReporter report("F8", argc, argv);
  const int64_t kHidden = 256;
  std::printf("== F8 (extension): dynamic batching under load ==\n\n");

  auto graph = EncoderBlock(kHidden);
  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  const DeviceSpec device = DeviceSpec::A10();

  struct Config {
    const char* engine;
    PadPolicy pad;
    const char* label;
  };
  const Config configs[] = {
      {"DISC", PadPolicy::kBatchMax, "DISC, pad to batch max"},
      {"DISC", PadPolicy::kBucketPow2, "DISC, pow2 buckets (ablation)"},
      {"TensorRT", PadPolicy::kBucketPow2, "TensorRT, pow2 buckets"},
      {"PyTorch", PadPolicy::kNone, "PyTorch eager, no batching"},
  };

  for (double mean_gap_us : {200.0, 40.0}) {
    auto requests = SyntheticRequestStream(192, mean_gap_us, 13);
    std::printf("-- arrival gap ~%.0fus (%s load) --\n", mean_gap_us,
                mean_gap_us < 100 ? "high" : "moderate");
    bench::Table table({"config", "p50", "p95", "p99", "qps", "pad waste",
                        "batches"});
    for (const Config& config : configs) {
      auto engine = MakeBaseline(config.engine);
      DISC_CHECK_OK(engine.status());
      DISC_CHECK_OK((*engine)->Prepare(*graph, {{"B", "S", ""}}));
      // Warm static engines on the bucket grid first (steady state).
      if (std::string(config.engine) == "TensorRT") {
        for (int64_t batch : {1, 2, 4, 8}) {
          for (int64_t seq : {32, 64, 128}) {
            DISC_CHECK_OK(
                (*engine)->Query(shape_fn(batch, seq), device).status());
          }
        }
      }
      BatcherOptions options;
      options.pad = config.pad;
      auto stats = SimulateServing(engine->get(), shape_fn, requests,
                                   options, device);
      DISC_CHECK_OK(stats.status());
      std::string prefix =
          bench::Fmt("gap%.0f", mean_gap_us) + "." + config.label + ".";
      for (char& c : prefix) {
        if (c == ' ' || c == ',') c = '-';
      }
      report.AddMetric(prefix + "p99_us", stats->p99_us, "us");
      report.AddMetric(prefix + "qps", stats->throughput_qps, "qps");
      report.AddMetric(prefix + "pad_waste", stats->padded_token_fraction,
                       "ratio");
      table.AddRow({config.label, bench::FmtUs(stats->p50_us),
                    bench::FmtUs(stats->p95_us), bench::FmtUs(stats->p99_us),
                    bench::Fmt("%.0f", stats->throughput_qps),
                    bench::Fmt("%.0f%%", stats->padded_token_fraction * 100),
                    std::to_string(stats->batches)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Reading: batch-max padding (possible only with any-shape kernels)\n"
      "wastes the least compute; bucket grids pay double padding (batch AND\n"
      "sequence); no batching collapses under load.\n");
  return 0;
}
