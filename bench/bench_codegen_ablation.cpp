// Experiment F3: codegen ablation — generic single-variant kernels vs the
// compile-time/runtime combined multi-version specialization:
//   * vectorization (guarded on divisibility of the launch domain),
//   * broadcast/index-arithmetic elimination (proven from shape equality),
//   * reduce schedule selection (warp-per-row vs block-per-row by runtime
//     row length).
// Swept over shapes that admit or defeat each specialization, so the table
// shows both the win when a guard admits and the zero-cost fallback when
// it does not.
#include "bench/bench_util.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/string_util.h"

namespace disc {
namespace {

std::unique_ptr<Graph> Elementwise() {
  auto g = std::make_unique<Graph>("ew");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(b.Mul(x, y), y))});
  return g;
}

std::unique_ptr<Graph> RowReduce() {
  auto g = std::make_unique<Graph>("reduce");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.ReduceSum(b.Mul(x, x), {1})});
  return g;
}

void Sweep(const char* title, const char* id, const Graph& graph,
           const std::vector<std::vector<std::string>>& labels,
           const std::vector<ShapeSet>& shape_sets,
           bench::JsonReporter* report) {
  auto specialized = DiscCompiler::Compile(graph, labels);
  auto generic = DiscCompiler::Compile(graph, labels,
                                       CompileOptions::NoSpecialization());
  DISC_CHECK_OK(specialized.status());
  DISC_CHECK_OK(generic.status());

  std::printf("-- %s --\n", title);
  bench::Table table({"shape", "generic us", "specialized us", "variant used",
                      "speedup"});
  for (const ShapeSet& shapes : shape_sets) {
    auto rg = (*generic)->RunWithShapes(shapes);
    auto rs = (*specialized)->RunWithShapes(shapes);
    DISC_CHECK_OK(rg.status());
    DISC_CHECK_OK(rs.status());
    std::string variant = "?";
    for (const auto& [name, count] : rs->profile.variant_counts) {
      if (count > 0) variant = name.substr(name.find('/') + 1);
    }
    std::string shape_str;
    for (const auto& dims : shapes) shape_str += "[" + Join(dims, "x") + "]";
    report->AddMetric(std::string(id) + "." + shape_str + ".generic_us",
                      rg->profile.device_time_us, "us");
    report->AddMetric(std::string(id) + "." + shape_str + ".specialized_us",
                      rs->profile.device_time_us, "us");
    table.AddRow({shape_str, bench::FmtUs(rg->profile.device_time_us),
                  bench::FmtUs(rs->profile.device_time_us), variant,
                  bench::Fmt("%.2fx", rg->profile.device_time_us /
                                          rs->profile.device_time_us)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using disc::ShapeSet;
  disc::bench::JsonReporter report("F3", argc, argv);
  std::printf("== F3: multi-version codegen vs generic kernels ==\n\n");

  auto ew = disc::Elementwise();
  disc::Sweep("elementwise (vectorization + broadcast elimination)", "ew",
              *ew, {{"B", "S"}, {"B", "S"}},
              {
                  ShapeSet{{1024, 1024}, {1024, 1024}},  // divisible -> vec4
                  ShapeSet{{1023, 1023}, {1023, 1023}},  // odd -> generic
                  ShapeSet{{64, 64}, {64, 64}},
                  ShapeSet{{7, 13}, {7, 13}},  // tiny + odd
              },
              &report);

  auto rr = disc::RowReduce();
  disc::Sweep("row reduction (schedule selection by runtime row length)",
              "reduce", *rr, {{"B", "S"}},
              {
                  ShapeSet{{4096, 64}},    // short rows -> warp per row
                  ShapeSet{{4096, 512}},   // medium -> warp per row
                  ShapeSet{{4096, 4096}},  // long rows -> block per row
                  ShapeSet{{16, 65536}},   // very long, few rows
              },
              &report);

  // Shape speculation: the hot shape gets an exact-shape variant; cold
  // shapes fall back to the guarded dynamic variants at zero cost.
  {
    using namespace disc;
    auto ew = Elementwise();
    CompileOptions with_spec;
    with_spec.likely_dim_values = {{"B", {512}}, {"S", {1024}}};
    auto spec = DiscCompiler::Compile(*ew, {{"B", "S"}, {"B", "S"}},
                                      with_spec);
    auto plain = DiscCompiler::Compile(*ew, {{"B", "S"}, {"B", "S"}});
    DISC_CHECK_OK(spec.status());
    DISC_CHECK_OK(plain.status());
    std::printf("-- shape speculation (hot shape hint = [512x1024]) --\n");
    bench::Table table({"shape", "dynamic us", "+speculation us", "variant",
                        "speedup"});
    for (const ShapeSet& shapes :
         {ShapeSet{{512, 1024}, {512, 1024}},   // the hot shape
          ShapeSet{{512, 1023}, {512, 1023}},   // near miss -> fallback
          ShapeSet{{64, 64}, {64, 64}}}) {
      auto rp = (*plain)->RunWithShapes(shapes);
      auto rs = (*spec)->RunWithShapes(shapes);
      DISC_CHECK_OK(rp.status());
      DISC_CHECK_OK(rs.status());
      std::string variant = "?";
      for (const auto& [name, count] : rs->profile.variant_counts) {
        if (count > 0) variant = name.substr(name.find('/') + 1);
      }
      std::string shape_str = "[" + Join(shapes[0], "x") + "]";
      report.AddMetric("speculation." + shape_str + ".dynamic_us",
                       rp->profile.device_time_us, "us");
      report.AddMetric("speculation." + shape_str + ".speculative_us",
                       rs->profile.device_time_us, "us");
      table.AddRow({shape_str, bench::FmtUs(rp->profile.device_time_us),
                    bench::FmtUs(rs->profile.device_time_us), variant,
                    bench::Fmt("%.2fx", rp->profile.device_time_us /
                                            rs->profile.device_time_us)});
    }
    table.Print();
  }
  return 0;
}
