// Experiment F5: compilation cost per model.
//
// DISC compiles each model exactly once (wall-clock measured on this
// machine — a real number, not simulated). The static archetypes pay their
// per-shape stall once per distinct shape in the trace; the table shows
// total compilation burden over each model's 64-query trace.
#include <set>

#include "bench/bench_util.h"
#include "compiler/compiler.h"

int main(int argc, char** argv) {
  using namespace disc;
  // --trace=<file>: capture the compile-phase spans as Chrome-trace JSON.
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F5", argc, argv);
  std::printf("== F5: compilation time per model ==\n\n");

  ModelConfig config;
  auto suite = BuildModelSuite(config);
  std::vector<std::pair<std::string, std::string>> breakdowns;
  bench::Table table({"model", "graph nodes", "distinct shapes in trace",
                      "DISC compile (measured)", "XLA total stall",
                      "TVM total stall", "TensorRT total stall (bucketed)"});
  for (const Model& model : suite) {
    auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
    DISC_CHECK_OK(exe.status());

    std::set<ShapeSet> distinct(model.trace.begin(), model.trace.end());
    // Bucketed distinct count: shapes after power-of-two rounding.
    std::set<ShapeSet> bucketed;
    for (ShapeSet shapes : model.trace) {
      for (size_t i = 0; i < shapes.size(); ++i) {
        const TensorType& t = model.graph->inputs()[i]->type();
        for (size_t d = 0; d < shapes[i].size(); ++d) {
          if (t.dims[d] == kDynamicDim) {
            shapes[i][d] = NextPowerOfTwo(std::max<int64_t>(1, shapes[i][d]));
          }
        }
      }
      bucketed.insert(shapes);
    }
    auto stall = [&](double base_ms, double per_node_ms, int64_t shapes) {
      return (base_ms + per_node_ms *
                            static_cast<double>(model.graph->num_nodes())) *
             static_cast<double>(shapes) * 1e3;  // -> us
    };
    // compile. prefix = real wall-clock on this machine, excluded from CI
    // hard-fail; the stall estimates are deterministic cost models.
    report.AddMetric("compile." + model.name + ".disc_compile_ms",
                     (*exe)->report().compile_ms, "ms");
    report.AddMetric(model.name + ".distinct_shapes",
                     static_cast<double>(distinct.size()), "count");
    report.AddMetric(
        model.name + ".xla_stall_us",
        stall(200, 3, static_cast<int64_t>(distinct.size())), "us");
    report.AddMetric(
        model.name + ".trt_stall_us",
        stall(600, 6, static_cast<int64_t>(bucketed.size())), "us");
    table.AddRow(
        {model.name, std::to_string(model.graph->num_nodes()),
         std::to_string(distinct.size()),
         bench::Fmt("%.1fms", (*exe)->report().compile_ms),
         bench::FmtUs(stall(200, 3, static_cast<int64_t>(distinct.size()))),
         bench::FmtUs(stall(2000, 40, static_cast<int64_t>(distinct.size()))),
         bench::FmtUs(stall(600, 6, static_cast<int64_t>(bucketed.size())))});
    breakdowns.emplace_back(model.name, (*exe)->report().PhaseBreakdown());
  }
  table.Print();
  std::printf("\n-- DISC per-phase compile breakdown --\n");
  for (const auto& [name, breakdown] : breakdowns) {
    std::printf("%s:\n%s", name.c_str(), breakdown.c_str());
  }
  std::printf(
      "\nNote: XLA/TVM/TensorRT stalls use the archetype cost models of "
      "src/baselines\n(per-shape compilation is the mechanism; absolute "
      "stall constants are profile\nparameters, deliberately conservative "
      "for TVM's tuning).\n");
  return 0;
}
