// Extension experiment F7: kernel-launch overhead and CUDA-Graph replay.
//
// CUDA graphs are the classic remedy for launch-bound inference — but they
// are shape-static: a captured graph replays only for the exact shape
// signature it was captured with. This bench runs a launch-heavy decode
// model under two traces:
//   * repeat-heavy — one hot shape (graphs shine),
//   * fully dynamic — every query a new KV length (graphs never replay).
// Systems: DISC, DISC+graph (capture per signature), and XLA+graph
// (per-shape engines with replay on cache hits; compile stalls included).
// The punchline matches the paper's framing: launch batching is orthogonal
// to — and no substitute for — dynamic-shape compilation; fusion already
// removed most launches.
#include "baselines/dynamic_engine.h"
#include "baselines/static_engine.h"
#include "bench/bench_util.h"

namespace disc {
namespace {

std::vector<ShapeSet> RepeatHeavyTrace(int64_t n, int64_t hidden) {
  std::vector<ShapeSet> trace;
  for (int64_t i = 0; i < n; ++i) {
    // 7/8 of traffic on one hot shape, rest on a few others.
    int64_t t = (i % 8 == 7) ? 8 + (i % 3) * 8 : 32;
    trace.push_back({{1, 1, hidden}, {1, t, hidden}, {1, t, hidden}});
  }
  return trace;
}

std::vector<ShapeSet> FullyDynamicTrace(int64_t n, int64_t hidden) {
  std::vector<ShapeSet> trace;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = 1 + i;  // decode: every step a fresh length
    trace.push_back({{1, 1, hidden}, {1, t, hidden}, {1, t, hidden}});
  }
  return trace;
}

std::unique_ptr<Engine> MakeSystem(const std::string& name) {
  if (name == "DISC") {
    return std::make_unique<DynamicCompilerEngine>(DynamicProfile::Disc());
  }
  if (name == "DISC+graph") {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.name = "DISC+graph";
    profile.use_cuda_graph = true;
    return std::make_unique<DynamicCompilerEngine>(profile);
  }
  StaticProfile profile = StaticProfile::Xla();
  profile.name = "XLA+graph";
  profile.use_cuda_graph = true;
  return std::make_unique<StaticCompilerEngine>(profile);
}

}  // namespace
}  // namespace disc

int main() {
  using namespace disc;
  std::printf("== F7 (extension): launch overhead & CUDA-Graph replay ==\n\n");
  ModelConfig config;
  Model model = BuildSeq2SeqStep(config);
  const DeviceSpec device = DeviceSpec::T4();
  const int64_t kQueries = 64;

  for (bool repeat_heavy : {true, false}) {
    auto trace = repeat_heavy ? RepeatHeavyTrace(kQueries, config.hidden)
                              : FullyDynamicTrace(kQueries, config.hidden);
    std::printf("-- %s trace (%lld queries) --\n",
                repeat_heavy ? "repeat-heavy" : "fully dynamic",
                static_cast<long long>(kQueries));
    bench::Table table({"system", "mean/query", "p99", "graph replays"});
    for (const char* name : {"DISC", "DISC+graph", "XLA+graph"}) {
      auto engine = MakeSystem(name);
      DISC_CHECK_OK(engine->Prepare(*model.graph, model.input_dim_labels));
      std::vector<double> latencies;
      int64_t replays = 0;
      double prev = -1;
      for (const ShapeSet& shapes : trace) {
        auto timing = engine->Query(shapes, device);
        DISC_CHECK_OK(timing.status());
        latencies.push_back(timing->total_us);
        // Heuristic replay counter: identical shape, lower device time.
        if (timing->compile_us == 0 && prev >= 0 &&
            timing->device_us < prev - 1.0) {
          ++replays;
        }
        prev = timing->device_us;
      }
      table.AddRow({name, bench::FmtUs(bench::Mean(latencies)),
                    bench::FmtUs(bench::Percentile(latencies, 99)),
                    std::string(name == std::string("DISC") ? "n/a" : "~") +
                        (name == std::string("DISC") ? "" :
                         std::to_string(replays))});
    }
    table.Print();
    std::printf("\n");
  }
  // Device character: the same launch-bound decode runs on the CPU target
  // (the paper's system also ships CPU backends) — near-zero dispatch
  // latency beats the GPU on tiny launch-bound steps.
  std::printf("-- device comparison on the fully dynamic decode trace --\n");
  bench::Table dev_table({"device", "mean/query", "launch overhead/call"});
  for (const DeviceSpec& spec :
       {DeviceSpec::T4(), DeviceSpec::A10(), DeviceSpec::XeonCpu()}) {
    auto engine = MakeSystem("DISC");
    DISC_CHECK_OK(engine->Prepare(*model.graph, model.input_dim_labels));
    auto trace = FullyDynamicTrace(kQueries, config.hidden);
    std::vector<double> latencies;
    for (const ShapeSet& shapes : trace) {
      auto timing = engine->Query(shapes, spec);
      DISC_CHECK_OK(timing.status());
      latencies.push_back(timing->total_us);
    }
    dev_table.AddRow({spec.name, bench::FmtUs(bench::Mean(latencies)),
                      bench::Fmt("%.1fus", spec.kernel_launch_us)});
  }
  dev_table.Print();
  std::printf(
      "\nReading: graph replay helps only when signatures repeat; on the\n"
      "decode trace every step is a new shape, so DISC+graph == DISC while\n"
      "XLA+graph still recompiles per step. The CPU target's near-zero\n"
      "dispatch latency makes it competitive on tiny launch-bound steps.\n");
  return 0;
}
