// Extension experiment F7: kernel-launch overhead and CUDA-Graph replay.
//
// CUDA graphs are the classic remedy for launch-bound inference — but they
// are shape-static: a captured graph replays only for the exact shape
// signature it was captured with. This bench runs a launch-heavy decode
// model under two traces:
//   * repeat-heavy — one hot shape (graphs shine),
//   * fully dynamic — every query a new KV length (graphs never replay).
// Systems: DISC, DISC+graph (capture per signature), and XLA+graph
// (per-shape engines with replay on cache hits; compile stalls included).
// The punchline matches the paper's framing: launch batching is orthogonal
// to — and no substitute for — dynamic-shape compilation; fusion already
// removed most launches.
#include "baselines/dynamic_engine.h"
#include "baselines/static_engine.h"
#include "bench/bench_util.h"

namespace disc {
namespace {

std::vector<ShapeSet> RepeatHeavyTrace(int64_t n, int64_t hidden) {
  std::vector<ShapeSet> trace;
  for (int64_t i = 0; i < n; ++i) {
    // 7/8 of traffic on one hot shape, rest on a few others.
    int64_t t = (i % 8 == 7) ? 8 + (i % 3) * 8 : 32;
    trace.push_back({{1, 1, hidden}, {1, t, hidden}, {1, t, hidden}});
  }
  return trace;
}

std::vector<ShapeSet> FullyDynamicTrace(int64_t n, int64_t hidden) {
  std::vector<ShapeSet> trace;
  for (int64_t i = 0; i < n; ++i) {
    int64_t t = 1 + i;  // decode: every step a fresh length
    trace.push_back({{1, 1, hidden}, {1, t, hidden}, {1, t, hidden}});
  }
  return trace;
}

std::unique_ptr<Engine> MakeSystem(const std::string& name) {
  if (name == "DISC") {
    // Plan cache off: the pre-memoization runtime (every query rebuilds
    // its launch plan) — the baseline the plan-cache rows compare against.
    DynamicProfile profile = DynamicProfile::Disc();
    profile.use_plan_cache = false;
    return std::make_unique<DynamicCompilerEngine>(profile);
  }
  if (name == "DISC+plan") {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.name = "DISC+plan";
    return std::make_unique<DynamicCompilerEngine>(profile);
  }
  if (name == "DISC+graph") {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.name = "DISC+graph";
    profile.use_cuda_graph = true;
    return std::make_unique<DynamicCompilerEngine>(profile);
  }
  StaticProfile profile = StaticProfile::Xla();
  profile.name = "XLA+graph";
  profile.use_cuda_graph = true;
  return std::make_unique<StaticCompilerEngine>(profile);
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  // --trace=<file>: capture per-query runtime spans (plan build/replay,
  // kernel launches) as Chrome-trace JSON.
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F7", argc, argv);
  report.AddMeta("device", "simulated T4 (device table: T4/A10/CPU)");
  std::printf("== F7 (extension): launch overhead & CUDA-Graph replay ==\n\n");
  ModelConfig config;
  Model model = BuildSeq2SeqStep(config);
  const DeviceSpec device = DeviceSpec::T4();
  const int64_t kQueries = 64;

  for (bool repeat_heavy : {true, false}) {
    auto trace = repeat_heavy ? RepeatHeavyTrace(kQueries, config.hidden)
                              : FullyDynamicTrace(kQueries, config.hidden);
    std::printf("-- %s trace (%lld queries) --\n",
                repeat_heavy ? "repeat-heavy" : "fully dynamic",
                static_cast<long long>(kQueries));
    bench::Table table(
        {"system", "mean/query", "p99", "plan hits", "graph replays"});
    for (const char* name : {"DISC", "DISC+plan", "DISC+graph", "XLA+graph"}) {
      auto engine = MakeSystem(name);
      DISC_CHECK_OK(engine->Prepare(*model.graph, model.input_dim_labels));
      std::vector<double> latencies;
      int64_t replays = 0;
      double prev = -1;
      for (const ShapeSet& shapes : trace) {
        auto timing = engine->Query(shapes, device);
        DISC_CHECK_OK(timing.status());
        latencies.push_back(timing->total_us);
        // Heuristic replay counter: identical shape, lower device time.
        if (timing->compile_us == 0 && prev >= 0 &&
            timing->device_us < prev - 1.0) {
          ++replays;
        }
        prev = timing->device_us;
      }
      const EngineStats& stats = engine->stats();
      {
        std::string prefix = std::string(repeat_heavy ? "repeat-heavy"
                                                      : "fully-dynamic") +
                             "." + name + ".";
        report.AddMetric(prefix + "mean_us", bench::Mean(latencies), "us");
        report.AddMetric(prefix + "p99_us",
                         bench::Percentile(latencies, 99), "us");
        if (stats.launch_plan_hits + stats.launch_plan_misses > 0) {
          report.AddMetric(prefix + "plan_hit_rate",
                           stats.launch_plan_hit_rate(), "ratio");
        }
      }
      table.AddRow(
          {name, bench::FmtUs(bench::Mean(latencies)),
           bench::FmtUs(bench::Percentile(latencies, 99)),
           stats.launch_plan_hits + stats.launch_plan_misses > 0
               ? bench::Fmt("%.0f%%", stats.launch_plan_hit_rate() * 100)
               : std::string("off"),
           std::string(name == std::string("DISC") ? "n/a" : "~") +
               (name == std::string("DISC") ? "" : std::to_string(replays))});
    }
    table.Print();
    std::printf("\n");
  }
  // Device character: the same launch-bound decode runs on the CPU target
  // (the paper's system also ships CPU backends) — near-zero dispatch
  // latency beats the GPU on tiny launch-bound steps.
  std::printf("-- device comparison on the fully dynamic decode trace --\n");
  bench::Table dev_table({"device", "mean/query", "launch overhead/call"});
  for (const DeviceSpec& spec :
       {DeviceSpec::T4(), DeviceSpec::A10(), DeviceSpec::XeonCpu()}) {
    auto engine = MakeSystem("DISC");
    DISC_CHECK_OK(engine->Prepare(*model.graph, model.input_dim_labels));
    auto trace = FullyDynamicTrace(kQueries, config.hidden);
    std::vector<double> latencies;
    for (const ShapeSet& shapes : trace) {
      auto timing = engine->Query(shapes, spec);
      DISC_CHECK_OK(timing.status());
      latencies.push_back(timing->total_us);
    }
    report.AddMetric("device." + std::string(spec.name) + ".mean_us",
                     bench::Mean(latencies), "us");
    dev_table.AddRow({spec.name, bench::FmtUs(bench::Mean(latencies)),
                      bench::Fmt("%.1fus", spec.kernel_launch_us)});
  }
  dev_table.Print();

  // Measured (wall-clock) host planning cost, cached vs uncached — the
  // direct view of what the plan cache memoizes. The numbers above charge
  // the *modeled* host cost; these are the runtime's real microseconds.
  std::printf("\n-- measured host planning time (repeat-heavy trace) --\n");
  {
    auto exe = DiscCompiler::Compile(*model.graph, model.input_dim_labels);
    DISC_CHECK_OK(exe.status());
    auto trace = RepeatHeavyTrace(kQueries * 4, config.hidden);
    double miss_us = 0, hit_us = 0;
    int64_t misses = 0, hits = 0;
    for (const ShapeSet& shapes : trace) {
      auto r = (*exe)->RunWithShapes(shapes);
      DISC_CHECK_OK(r.status());
      if (r->profile.launch_plan_hit) {
        hit_us += r->profile.host_plan_us;
        ++hits;
      } else {
        miss_us += r->profile.host_plan_us;
        ++misses;
      }
    }
    double mean_miss = misses > 0 ? miss_us / static_cast<double>(misses) : 0;
    double mean_hit = hits > 0 ? hit_us / static_cast<double>(hits) : 0;
    bench::Table host_table({"path", "queries", "mean host plan"});
    host_table.AddRow({"plan build (miss)",
                       std::to_string(misses), bench::FmtUs(mean_miss)});
    host_table.AddRow({"plan replay (hit)",
                       std::to_string(hits), bench::FmtUs(mean_hit)});
    host_table.Print();
    // wall. prefix: real microseconds, machine-dependent — excluded from
    // CI hard-fail comparison.
    report.AddMetric("wall.host_plan_miss_us", mean_miss, "us");
    report.AddMetric("wall.host_plan_hit_us", mean_hit, "us");
    report.AddMetric("plan_cache_hit_rate",
                     static_cast<double>(hits) /
                         static_cast<double>(hits + misses),
                     "ratio");
    std::printf("hit rate %.0f%%, plan build / replay = %.1fx\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses),
                mean_hit > 0 ? mean_miss / mean_hit : 0.0);
  }
  std::printf(
      "\nReading: graph replay helps only when signatures repeat; on the\n"
      "decode trace every step is a new shape, so DISC+graph == DISC while\n"
      "XLA+graph still recompiles per step. The plan cache attacks the\n"
      "complementary cost — the host-side symbolic work — and degrades to\n"
      "a hash probe (not a stall) when shapes never repeat. The CPU\n"
      "target's near-zero dispatch latency makes it competitive on tiny\n"
      "launch-bound steps.\n");
  return 0;
}
