// Extension experiment F10: async compilation service + persistent
// artifact cache on a cold-start serving trace.
//
// The same request trace is served three ways: blocking compilation on the
// first query (sync), the async compile service against a cold artifact
// cache (queries before the executable lands degrade to the interpreter
// leg — slower, but never stalled), and the async service against the warm
// cache a previous lifetime persisted (every artifact restores from disk;
// no compile jobs at all). Reported per column: latency percentiles, how
// many queries stalled on compilation, how many degraded to the fallback
// leg, and the time to the first compiled / first profile-specialized
// kernel.
//
// Determinism: compile latency and cache-load latency are fixed simulated
// constants (the engine adopts an executable when the simulated clock
// passes submit + latency, waiting out slow workers off the clock), so
// BENCH_F10.json is byte-stable and CI gates it against the committed
// baseline. The persistence smoke reuses this binary: `--cache-dir=D`
// serves one async column against D without wiping it, and `--expect-warm`
// fails the process unless that run was 100% disk hits with zero compiles.
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "baselines/async_engine.h"
#include "baselines/interpreter_engine.h"
#include "bench/bench_util.h"
#include "compile_service/compile_service.h"
#include "ir/builder.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {
namespace {

constexpr int64_t kHidden = 128;
constexpr double kCompileLatencyUs = 400.0;  // fixed simulated compile
constexpr double kCacheLoadLatencyUs = 25.0;  // fixed simulated disk load
constexpr double kArrivalGapUs = 40.0;

std::unique_ptr<Graph> EncoderBlock() {
  auto g = std::make_unique<Graph>("encoder");
  GraphBuilder b(g.get());
  Rng rng(4);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  Tensor w(DType::kF32, {kHidden, kHidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  Value* h = b.Gelu(b.MatMul(x, b.Constant(w)));
  Value* scale = b.Constant(
      Tensor::F32({kHidden}, std::vector<float>(kHidden, 1.0f)));
  Value* bias = b.Constant(
      Tensor::F32({kHidden}, std::vector<float>(kHidden, 0.0f)));
  b.Output({b.LayerNorm(h, scale, bias)});
  return g;
}

// Hot shape dominated trace (75% {512,1024}) with a deterministic cold
// tail — no RNG, so the profile feedback emits identical hints at any
// emission point and the cold and warm lifetimes produce identical cache
// keys.
std::vector<std::vector<std::vector<int64_t>>> ServingTrace(int n) {
  const std::vector<std::vector<int64_t>> tail[] = {
      {{64, 128, kHidden}},
      {{96, 256, kHidden}},
      {{128, 512, kHidden}},
      {{32, 64, kHidden}},
  };
  std::vector<std::vector<std::vector<int64_t>>> trace;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i >= 12 && i % 4 == 3) {
      trace.push_back(tail[(i / 4) % 4]);
    } else {
      trace.push_back({{512, 1024, kHidden}});
    }
  }
  return trace;
}

struct ColumnResult {
  std::vector<double> latencies;
  int64_t stall_queries = 0;      // queries that blocked on compilation
  int64_t fallback_queries = 0;   // queries degraded to the interpreter leg
  double first_executable_us = -1.0;
  double first_specialized_us = -1.0;
  int64_t compile_jobs = 0;       // service jobs that actually compiled
  int64_t disk_restores = 0;      // service jobs restored from the cache
  int64_t hot_swaps = 0;
};

ColumnResult RunColumn(const Graph& graph, const std::string& cache_dir,
                       bool sync_compile, int num_requests) {
  CompileServiceOptions service_options;
  service_options.cache.dir = cache_dir;  // "" = cache disabled
  CompileService service(service_options);

  AsyncEngineOptions options;
  options.profile = DynamicProfile::DiscWithSpeculation();
  options.feedback.max_values_per_label = 1;
  options.sync_compile = sync_compile;
  options.simulated_compile_latency_us = kCompileLatencyUs;
  options.simulated_cache_load_latency_us = kCacheLoadLatencyUs;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);

  engine.SetSimulatedTimeUs(0.0);
  DISC_CHECK_OK(engine.Prepare(graph, {{"B", "S", ""}}));

  ColumnResult result;
  const DeviceSpec device = DeviceSpec::A10();
  auto trace = ServingTrace(num_requests);
  double now_us = 0.0;
  for (const auto& dims : trace) {
    now_us += kArrivalGapUs;
    engine.SetSimulatedTimeUs(now_us);
    auto timing = engine.Query(dims, device);
    DISC_CHECK_OK(timing.status());
    result.latencies.push_back(timing->total_us);
    if (timing->compile_us > 0.0) ++result.stall_queries;
  }
  service.Drain();

  result.fallback_queries = engine.stats().fallback_queries;
  result.first_executable_us = engine.first_executable_sim_us();
  result.first_specialized_us = engine.first_specialized_sim_us();
  result.compile_jobs = service.stats().compiled;
  result.disk_restores = engine.disk_restores();
  result.hot_swaps = engine.swaps();
  return result;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  namespace fs = std::filesystem;
  bench::TraceFlag trace_flag(argc, argv);

  std::string persist_dir;
  bool expect_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      persist_dir = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--expect-warm") == 0) {
      expect_warm = true;
    }
  }

  const int kRequests = 160;
  auto graph = EncoderBlock();

  if (!persist_dir.empty()) {
    // Persistence-smoke mode: one async column against the given cache
    // directory, left intact for the next process lifetime.
    ColumnResult r = RunColumn(*graph, persist_dir, /*sync=*/false, kRequests);
    std::printf(
        "persist run: compile_jobs=%lld disk_restores=%lld stalls=%lld "
        "fallback=%lld\n",
        static_cast<long long>(r.compile_jobs),
        static_cast<long long>(r.disk_restores),
        static_cast<long long>(r.stall_queries),
        static_cast<long long>(r.fallback_queries));
    if (expect_warm && (r.compile_jobs != 0 || r.disk_restores == 0)) {
      std::fprintf(stderr,
                   "FAIL: expected a fully warm cache (zero compile jobs, "
                   "all disk hits), got %lld compiles / %lld restores\n",
                   static_cast<long long>(r.compile_jobs),
                   static_cast<long long>(r.disk_restores));
      return 1;
    }
    return 0;
  }

  bench::JsonReporter report("F10", argc, argv);
  std::printf(
      "== F10 (extension): async compile service, cold vs warm artifact "
      "cache ==\n\n");

  const std::string scratch =
      (fs::temp_directory_path() /
       ("disc_bench_f10_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(scratch);

  struct Column {
    const char* key;
    const char* label;
    ColumnResult r;
  };
  Column columns[] = {
      // Blocking compile on the first query, no artifact cache: the old
      // Prepare-then-stall deployment.
      {"sync", "sync compile", RunColumn(*graph, "", /*sync=*/true, kRequests)},
      // Async service, empty cache: the first lifetime of a deployment.
      {"async_cold", "async + cold cache",
       RunColumn(*graph, scratch, /*sync=*/false, kRequests)},
      // Async service, the cache the previous column persisted: a restart.
      {"async_warm", "async + warm cache",
       RunColumn(*graph, scratch, /*sync=*/false, kRequests)},
  };
  fs::remove_all(scratch);

  bench::Table table({"system", "p50", "p99", "stalls", "fallback",
                      "first exe", "first spec", "compiles", "restores"});
  for (Column& column : columns) {
    std::vector<double> l = column.r.latencies;
    const std::string prefix = std::string(column.key) + ".";
    report.AddMetric(prefix + "p50_us", bench::Percentile(l, 50), "us");
    report.AddMetric(prefix + "p99_us", bench::Percentile(l, 99), "us");
    report.AddMetric(prefix + "stall_queries",
                     static_cast<double>(column.r.stall_queries), "queries");
    report.AddMetric(prefix + "fallback_queries",
                     static_cast<double>(column.r.fallback_queries),
                     "queries");
    report.AddMetric(prefix + "first_executable_us",
                     column.r.first_executable_us, "us");
    report.AddMetric(prefix + "first_specialized_us",
                     column.r.first_specialized_us, "us");
    report.AddMetric(prefix + "compile_jobs",
                     static_cast<double>(column.r.compile_jobs), "jobs");
    report.AddMetric(prefix + "disk_restores",
                     static_cast<double>(column.r.disk_restores), "jobs");
    table.AddRow({column.label, bench::FmtUs(bench::Percentile(l, 50)),
                  bench::FmtUs(bench::Percentile(l, 99)),
                  std::to_string(column.r.stall_queries),
                  std::to_string(column.r.fallback_queries),
                  bench::FmtUs(column.r.first_executable_us),
                  bench::FmtUs(column.r.first_specialized_us),
                  std::to_string(column.r.compile_jobs),
                  std::to_string(column.r.disk_restores)});
  }
  table.Print();

  const ColumnResult& sync = columns[0].r;
  const ColumnResult& cold = columns[1].r;
  const ColumnResult& warm = columns[2].r;
  // The contract the experiment exists to demonstrate:
  //  - async serving never stalls a query on compilation (cold or warm);
  //  - the warm lifetime recompiles nothing — every artifact, including
  //    the profile-respecialized one, restores from disk;
  //  - the warm restart reaches compiled and specialized kernels sooner.
  DISC_CHECK_GE(sync.stall_queries, 1) << "sync column never stalled";
  DISC_CHECK_EQ(cold.stall_queries, 0) << "async cold run stalled";
  DISC_CHECK_EQ(warm.stall_queries, 0) << "async warm run stalled";
  DISC_CHECK_EQ(warm.compile_jobs, 0) << "warm cache still compiled";
  DISC_CHECK_GE(warm.disk_restores, 2) << "warm cache missed";
  DISC_CHECK_LT(warm.first_executable_us, cold.first_executable_us);
  DISC_CHECK_LT(warm.first_specialized_us, cold.first_specialized_us);
  DISC_CHECK_LE(warm.fallback_queries, cold.fallback_queries);

  std::printf(
      "\nReading: blocking compilation buys its low steady-state latency\n"
      "with a %s stall on the first query. The async service serves those\n"
      "queries on the interpreter leg instead (zero stalls, modestly higher\n"
      "latency until the hot swap), and the persistent cache removes even\n"
      "that window on restart: every executable — including the\n"
      "profile-specialized variant — restores from disk with zero compile\n"
      "jobs, so the warm lifetime reaches specialized kernels %.0fx sooner.\n",
      bench::FmtUs(kCompileLatencyUs).c_str(),
      columns[1].r.first_specialized_us / columns[2].r.first_specialized_us);
  return 0;
}
