// Experiment F2: fusion ablation — none -> kLoop -> +kInput -> +kStitch,
// plus the shape-knowledge ablation (fusion restricted to statically-known
// shapes, i.e. what a shape-value-based compiler can prove on a dynamic
// graph).
//
// Workloads: the memory-bound subgraphs the paper's fusion section targets
// (softmax, layernorm, GELU-MLP glue) and the full BERT model.
#include "bench/bench_util.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {
namespace {

struct Workload {
  std::string name;
  std::unique_ptr<Graph> graph;
  std::vector<std::vector<std::string>> labels;
  ShapeSet shapes;
};

Workload MakeSoftmax() {
  Workload w;
  w.name = "softmax";
  w.graph = std::make_unique<Graph>("softmax");
  GraphBuilder b(w.graph.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  w.labels = {{"B", "S"}};
  w.shapes = {{256, 512}};
  return w;
}

Workload MakeLayerNorm() {
  Workload w;
  w.name = "layernorm";
  w.graph = std::make_unique<Graph>("layernorm");
  GraphBuilder b(w.graph.get());
  const int64_t kHidden = 512;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kHidden});
  Value* scale = b.Constant(Tensor::F32({kHidden},
                                        std::vector<float>(kHidden, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({kHidden},
                                       std::vector<float>(kHidden, 0.0f)));
  b.Output({b.LayerNorm(x, scale, bias)});
  w.labels = {{"B", ""}};
  w.shapes = {{2048, kHidden}};
  return w;
}

Workload MakeGeluGlue() {
  Workload w;
  w.name = "gelu-glue";
  w.graph = std::make_unique<Graph>("gelu_glue");
  GraphBuilder b(w.graph.get());
  Rng rng(1);
  const int64_t kHidden = 512;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kHidden});
  Tensor bias_t(DType::kF32, {kHidden});
  for (int64_t i = 0; i < kHidden; ++i) bias_t.f32_data()[i] = rng.Normal();
  Value* h = b.Gelu(b.Add(x, b.Constant(bias_t)));
  b.Output({b.Mul(h, b.ScalarF32(1.1f))});
  w.labels = {{"B", ""}};
  w.shapes = {{4096, kHidden}};
  return w;
}

struct Config {
  std::string name;
  CompileOptions options;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  {
    Config c{"no-fusion", CompileOptions::NoFusion()};
    configs.push_back(std::move(c));
  }
  {
    Config c;
    c.name = "kLoop";
    c.options.fusion.enable_input_fusion = false;
    c.options.fusion.enable_stitch = false;
    configs.push_back(std::move(c));
  }
  {
    Config c;
    c.name = "+kInput";
    c.options.fusion.enable_stitch = false;
    configs.push_back(std::move(c));
  }
  {
    Config c;
    c.name = "+kStitch";
    configs.push_back(std::move(c));
  }
  {
    Config c{"static-only shapes", CompileOptions::NoSymbolicShapes()};
    configs.push_back(std::move(c));
  }
  return configs;
}

// JSON metric key: "<workload>.<config>.<metric>" with spaces flattened.
std::string MetricKey(const std::string& workload, const std::string& config,
                      const char* metric) {
  std::string key = workload + "." + config + "." + metric;
  for (char& c : key) {
    if (c == ' ') c = '-';
  }
  return key;
}

void RunWorkload(const Workload& w, bench::JsonReporter* report) {
  std::printf("-- %s, input %s --\n", w.name.c_str(),
              [&] {
                std::string s;
                for (const auto& dims : w.shapes) {
                  s += "[" + Join(dims, "x") + "]";
                }
                return s;
              }()
                  .c_str());
  bench::Table table(
      {"config", "kernels launched", "bytes moved", "sim time", "speedup"});
  double base_time = 0;
  for (const Config& config : Configs()) {
    auto exe = DiscCompiler::Compile(*w.graph, w.labels, config.options);
    DISC_CHECK_OK(exe.status());
    auto r = (*exe)->RunWithShapes(w.shapes);
    DISC_CHECK_OK(r.status());
    double t = r->profile.device_time_us;
    if (config.name == "no-fusion") base_time = t;
    int64_t launches = r->profile.kernel_launches + r->profile.library_calls;
    report->AddMetric(MetricKey(w.name, config.name, "device_us"), t, "us");
    report->AddMetric(MetricKey(w.name, config.name, "launches"),
                      static_cast<double>(launches), "count");
    report->AddMetric(
        MetricKey(w.name, config.name, "bytes_moved"),
        static_cast<double>(r->profile.bytes_read + r->profile.bytes_written),
        "bytes");
    table.AddRow({config.name,
                  std::to_string(launches),
                  bench::Fmt("%.2fMB", (r->profile.bytes_read +
                                        r->profile.bytes_written) /
                                           1e6),
                  bench::FmtUs(t), bench::Fmt("%.2fx", base_time / t)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  disc::bench::JsonReporter report("F2", argc, argv);
  report.AddMeta("device", "simulated");
  std::printf("== F2: fusion ablation (dynamic shapes throughout) ==\n\n");
  disc::RunWorkload(disc::MakeSoftmax(), &report);
  disc::RunWorkload(disc::MakeLayerNorm(), &report);
  disc::RunWorkload(disc::MakeGeluGlue(), &report);

  // Full model: BERT.
  disc::ModelConfig config;
  disc::Model bert = disc::BuildBert(config);
  std::printf("-- full bert, trace mean over %zu queries --\n",
              bert.trace.size());
  disc::bench::Table table({"config", "mean sim time", "speedup"});
  double base_time = 0;
  for (const auto& cfg : disc::Configs()) {
    auto exe =
        disc::DiscCompiler::Compile(*bert.graph, bert.input_dim_labels,
                                    cfg.options);
    DISC_CHECK_OK(exe.status());
    double total = 0;
    for (const auto& shapes : bert.trace) {
      auto r = (*exe)->RunWithShapes(shapes);
      DISC_CHECK_OK(r.status());
      total += r->profile.device_time_us;
    }
    double mean = total / static_cast<double>(bert.trace.size());
    if (cfg.name == "no-fusion") base_time = mean;
    report.AddMetric(disc::MetricKey("bert", cfg.name, "mean_device_us"),
                     mean, "us");
    table.AddRow({cfg.name, disc::bench::FmtUs(mean),
                  disc::bench::Fmt("%.2fx", base_time / mean)});
  }
  table.Print();
  return 0;
}
