// Extension experiment F11: symbolic arena memory planning.
//
// Dynamic shapes make the memory footprint a per-request quantity; the
// arena planner turns it back into a compile-time formula. This bench
// compares three Run-time memory strategies on the same executables:
//   * caching   — one CachingAllocator call per live value (baseline);
//   * per-slot  — one call per BufferAssignment slot (exact-size reuse);
//   * arena     — ONE call for the whole run: every value (constants
//                 included) lives at a compile-time offset, and the arena
//                 size is the symbolic peak formula evaluated per shape.
// Measured per model x shape: peak bytes_in_use, allocator calls per Run
// on a launch-plan-cache hit, and size-class rounding waste. Outputs are
// checked bit-identical across the three legs.
//
// The serving section exercises what the formula buys beyond allocation
// counts: memory-aware admission. The batcher predicts each batch's
// footprint (Engine::PredictPeakBytes) and sheds batches that would not
// fit the device budget, instead of discovering ResourceExhausted
// mid-run. `--admission-smoke` runs only that scenario (used by the chaos
// CI job, optionally with DISC_FAILPOINTS arming runtime.alloc).
#include <cstring>

#include "baselines/dynamic_engine.h"
#include "bench/bench_util.h"
#include "ir/builder.h"
#include "serving/serving.h"

namespace disc {
namespace {

const char* ModeName(MemoryMode mode) {
  switch (mode) {
    case MemoryMode::kCachingAllocator:
      return "caching";
    case MemoryMode::kPerSlot:
      return "per_slot";
    case MemoryMode::kArena:
      return "arena";
  }
  return "?";
}

bool BitIdentical(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dims() != b[i].dims() || a[i].dtype() != b[i].dtype()) {
      return false;
    }
    if (std::memcmp(a[i].f32_data(), b[i].f32_data(),
                    static_cast<size_t>(a[i].num_elements()) *
                        sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// Memory-aware admission under a device budget sized so some padded
// batches provably fit and others provably do not. Returns the stats so
// main can both report metrics and smoke-check the accounting.
ServingStats RunAdmissionScenario(bench::JsonReporter* report) {
  Graph g("f11-admission");
  GraphBuilder b(&g);
  const int64_t kHidden = 32;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  b.Output({b.Softmax(b.Relu(x))});
  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };

  DynamicProfile profile = DynamicProfile::DiscArena();
  DynamicCompilerEngine probe(profile);
  DISC_CHECK_OK(probe.Prepare(g, {{"B", "S", ""}}));
  auto small = probe.PredictPeakBytes(shape_fn(1, 32));
  auto large = probe.PredictPeakBytes(shape_fn(8, 128));
  DISC_CHECK_OK(small.status());
  DISC_CHECK_OK(large.status());
  // Three quarters of the way up: full batches at the longest sequences
  // exceed it, the typical batch fits.
  const int64_t budget = (*small + 3 * *large) / 4;

  // The device itself enforces the same budget: any batch that slipped
  // past admission would fail mid-run — `failed` stays zero only because
  // the prediction is exact.
  profile.memory_limit_bytes = budget;
  DynamicCompilerEngine engine(profile);
  DISC_CHECK_OK(engine.Prepare(g, {{"B", "S", ""}}));
  BatcherOptions options;
  options.max_batch = 8;
  options.memory_limit_bytes = budget;
  auto requests = SyntheticRequestStream(96, 30.0, 21);
  auto stats = SimulateServing(&engine, shape_fn, requests, options,
                               DeviceSpec::T4());
  DISC_CHECK_OK(stats.status());

  std::printf("admission budget = %lld B (predictions: %lld B .. %lld B)\n",
              static_cast<long long>(budget), static_cast<long long>(*small),
              static_cast<long long>(*large));
  std::printf("admission: %s\n", stats->ToString().c_str());
  std::printf("accounting=%s\n",
              stats->submitted == stats->completed + stats->shed +
                                      stats->deadline_missed + stats->failed
                  ? "ok"
                  : "DRIFTED");
  if (report != nullptr) {
    report->AddMetric("serving.admission.completed",
                      static_cast<double>(stats->completed), "requests");
    report->AddMetric("serving.admission.memory_shed",
                      static_cast<double>(stats->memory_shed), "requests");
    report->AddMetric("serving.admission.failed",
                      static_cast<double>(stats->failed), "requests");
    report->AddMetric("serving.admission.predictions",
                      static_cast<double>(engine.stats().memory_predictions),
                      "calls");
  }
  return *stats;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bool admission_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--admission-smoke") == 0) admission_smoke = true;
  }
  if (admission_smoke) {
    // Chaos-CI entry point: just the admission scenario, no JSON output.
    // With DISC_FAILPOINTS arming runtime.alloc the replay must degrade
    // (retries / failed batches in the stats) but never crash, and the
    // accounting invariant must hold either way.
    std::printf("== F11 admission smoke ==\n");
    ServingStats stats = RunAdmissionScenario(nullptr);
    DISC_CHECK_GT(stats.completed, 0) << "nothing completed";
    return 0;
  }

  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F11", argc, argv);
  report.AddMeta("device", "simulated A10");
  std::printf("== F11 (extension): symbolic arena memory planning ==\n\n");

  const struct {
    const char* name;
    Model model;
    std::vector<ShapeSet> sweep;
  } cases[] = {
      {"mlp", BuildMlp(),
       {{{1, 64}}, {{16, 64}}, {{128, 64}}, {{1024, 64}}}},
      {"bert", BuildBert(),
       {{{1, 32, 64}}, {{1, 128, 64}}, {{4, 64, 64}}, {{8, 128, 64}}}},
  };
  const MemoryMode kModes[] = {MemoryMode::kCachingAllocator,
                               MemoryMode::kPerSlot, MemoryMode::kArena};

  bool arena_beats_per_slot_somewhere = false;
  for (const auto& c : cases) {
    auto exe = DiscCompiler::Compile(*c.model.graph, c.model.input_dim_labels);
    DISC_CHECK_OK(exe.status());
    const MemoryPlan& plan = (*exe)->memory_plan();
    DISC_CHECK(plan.planned);
    std::printf("-- %s: %s --\n", c.name, plan.ToString().c_str());
    report.AddMeta(std::string(c.name) + ".peak_formula",
                   plan.peak_bytes.ToString());
    report.AddMetric(std::string(c.name) + ".arena_slots",
                     static_cast<double>(plan.num_slots()), "slots");
    report.AddMetric(std::string(c.name) + ".arena_fallbacks",
                     static_cast<double>(plan.fallbacks.size()), "values");

    bench::Table table({"shape", "mode", "peak bytes", "allocs/Run (hit)",
                        "rounding waste"});
    for (const ShapeSet& shapes : c.sweep) {
      std::string label = "B" + std::to_string(shapes[0][0]);
      if (shapes[0].size() > 2) label += "xS" + std::to_string(shapes[0][1]);
      int64_t per_slot_peak = 0;
      for (MemoryMode mode : kModes) {
        RunOptions options;
        options.memory_mode = mode;
        // First run builds + memoizes the launch plan; the second is the
        // hot path this PR targets (plan hit: no size arithmetic, and in
        // arena mode at most one cached allocation).
        DISC_CHECK_OK((*exe)->RunWithShapes(shapes, options).status());
        auto r = (*exe)->RunWithShapes(shapes, options);
        DISC_CHECK_OK(r.status());
        DISC_CHECK(r->profile.launch_plan_hit);
        const RunProfile& p = r->profile;
        if (mode == MemoryMode::kPerSlot) per_slot_peak = p.peak_memory_bytes;
        if (mode == MemoryMode::kArena) {
          DISC_CHECK_EQ(p.alloc_calls, 1);
          DISC_CHECK_EQ(p.alloc_rounding_waste, 0);
          if (p.peak_memory_bytes < per_slot_peak) {
            arena_beats_per_slot_somewhere = true;
          }
        }
        const std::string prefix =
            std::string(c.name) + "." + label + "." + ModeName(mode) + ".";
        report.AddMetric(prefix + "peak_bytes",
                         static_cast<double>(p.peak_memory_bytes), "bytes");
        report.AddMetric(prefix + "alloc_calls",
                         static_cast<double>(p.alloc_calls), "calls");
        report.AddMetric(prefix + "rounding_waste",
                         static_cast<double>(p.alloc_rounding_waste),
                         "bytes");
        table.AddRow({label, ModeName(mode),
                      std::to_string(p.peak_memory_bytes),
                      std::to_string(p.alloc_calls),
                      std::to_string(p.alloc_rounding_waste)});
      }
    }
    table.Print();

    // Numerics must not depend on the memory strategy: data-mode outputs
    // are bit-identical across all three legs.
    std::vector<Tensor> inputs = c.model.make_inputs(c.model.small_shapes, 3);
    RunOptions caching, per_slot, arena;
    per_slot.memory_mode = MemoryMode::kPerSlot;
    arena.memory_mode = MemoryMode::kArena;
    auto r0 = (*exe)->Run(inputs, caching);
    auto r1 = (*exe)->Run(inputs, per_slot);
    auto r2 = (*exe)->Run(inputs, arena);
    DISC_CHECK_OK(r0.status());
    DISC_CHECK_OK(r1.status());
    DISC_CHECK_OK(r2.status());
    DISC_CHECK(BitIdentical(r0->outputs, r1->outputs));
    DISC_CHECK(BitIdentical(r0->outputs, r2->outputs));
    std::printf("outputs bit-identical across caching/per-slot/arena\n\n");
    report.AddMetric(std::string(c.name) + ".outputs_bit_identical", 1.0,
                     "bool");
  }
  DISC_CHECK(arena_beats_per_slot_somewhere)
      << "arena plan never reduced peak bytes vs the per-slot plan";

  std::printf("-- memory-aware admission (predict-then-shed) --\n");
  (void)RunAdmissionScenario(&report);

  std::printf(
      "\nReading: the arena turns the Run hot path allocator-free (one\n"
      "cached call, zero rounding waste) and makes the footprint a\n"
      "formula: serving evaluates it per padded batch and sheds work that\n"
      "would not fit, so capacity pressure shows up as admission-control\n"
      "sheds instead of mid-batch ResourceExhausted failures.\n");
  return 0;
}
