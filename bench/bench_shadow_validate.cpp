// Extension experiment F14: the differential admission gate under
// injected miscompiles.
//
// The question this figure answers: when the compiler (or the artifact
// cache) produces a wrong executable, how many wrong results reach
// completed requests, and what does the protection cost? The same serving
// trace is replayed under four fault schedules with shadow validation ON
// (clean, a miscompiled kernel, a mispredicting guard, a bit-rotted cache
// entry), plus an UNGATED leg that adopts a bad respecialization and must
// recover by runtime rollback, plus a paired-latency leg that measures
// what validation adds to the serving thread (median of paired per-query
// deltas; the gate runs on a low-priority service worker, so the answer
// must be ~0).
//
// Every result row is checked against the IR reference evaluator:
// `wrong_results_served` counts completed queries whose outputs diverge
// beyond tolerance. The invariant the gate buys — and CI asserts — is
// wrong_results_served == 0 on EVERY leg, with the bad artifact poisoned
// in the persistent quarantine (the restart sub-leg proves a warm restart
// refuses it with zero compiles).
//
// Determinism: compile/load/validation latencies are fixed simulated
// constants, traffic is a fixed trace, probe inputs are seeded — so
// BENCH_F14.json is byte-stable and CI gates it against the committed
// baseline (wall.* excluded as usual).
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "baselines/async_engine.h"
#include "baselines/interpreter_engine.h"
#include "bench/bench_util.h"
#include "compile_service/compile_service.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "support/failpoint.h"

namespace disc {
namespace {

constexpr double kCompileLatencyUs = 400.0;
constexpr double kCacheLoadLatencyUs = 25.0;
constexpr double kValidationLatencyUs = 120.0;
constexpr double kArrivalGapUs = 40.0;
constexpr int kRequests = 120;

std::unique_ptr<Graph> EwModel() {
  auto g = std::make_unique<Graph>("gate");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(x, x))});
  return g;
}

const std::vector<std::vector<std::string>> kLabels = {{"B", "S"}};

// Hot shape {8,64} dominated trace with a deterministic cold tail.
std::vector<std::vector<std::vector<int64_t>>> ServingTrace() {
  const std::vector<std::vector<int64_t>> tail[] = {
      {{4, 32}}, {{6, 48}}, {{3, 16}}, {{5, 24}},
  };
  std::vector<std::vector<std::vector<int64_t>>> trace;
  trace.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    if (i >= 12 && i % 4 == 3) {
      trace.push_back(tail[(i / 4) % 4]);
    } else {
      trace.push_back({{8, 64}});
    }
  }
  return trace;
}

Tensor DeterministicInput(const std::vector<int64_t>& dims) {
  int64_t n = dims[0] * dims[1];
  std::vector<float> values;
  values.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<float>((i * 37) % 101) / 50.0f - 1.0f);
  }
  return Tensor::F32(dims, values);
}

struct LegConfig {
  bool validate = true;
  /// DISC_FAILPOINTS-grammar schedule armed for the leg ("" = fault-free).
  std::string failpoints;
  std::string cache_dir;
  /// > 0 enables profile-feedback respecialization.
  int64_t feedback_after = 0;
  /// Hints folded into every compile of the leg (produces guarded
  /// speculative variants, the prey of kernel.guard.mispredict).
  LikelyDimValues compile_hints;
};

struct LegResult {
  std::vector<double> latencies;
  int64_t wrong_results_served = 0;
  int64_t checked_results = 0;
  int64_t validations_run = 0;
  int64_t validations_caught = 0;
  int64_t swaps = 0;
  int64_t rollbacks = 0;
  int64_t data_loss_events = 0;
  int64_t poisoned_skips = 0;
  int64_t fallback_queries = 0;
  int64_t compile_jobs = 0;
  int64_t disk_restores = 0;
  int64_t cache_quarantined = 0;
  bool rollback_restore_bit_identical = true;
};

LegResult RunLeg(const Graph& graph, const LegConfig& config) {
  FailpointRegistry::Global().DisarmAll();
  if (!config.failpoints.empty()) {
    DISC_CHECK_OK(FailpointRegistry::Global().ArmFromSpec(config.failpoints));
  }

  CompileServiceOptions service_options;
  service_options.cache.dir = config.cache_dir;  // "" = disabled
  CompileService service(service_options);

  AsyncEngineOptions options;
  options.profile = DynamicProfile::Disc();
  options.profile.feedback_after = config.feedback_after;
  for (const auto& hint : config.compile_hints) {
    options.profile.compile_options.likely_dim_values.push_back(hint);
  }
  options.simulated_compile_latency_us = kCompileLatencyUs;
  options.simulated_cache_load_latency_us = kCacheLoadLatencyUs;
  options.validate_adoptions = config.validate;
  options.simulated_validation_latency_us = kValidationLatencyUs;
  AsyncCompileEngine engine(
      &service,
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      options);

  engine.SetSimulatedTimeUs(0.0);
  DISC_CHECK_OK(engine.Prepare(graph, kLabels));

  LegResult result;
  const DeviceSpec device = DeviceSpec::A10();
  // Bit-identical rollback check state: outputs of the first adopted
  // generation at the hot shape, compared again after any rollback.
  std::vector<Tensor> first_generation_outputs;
  bool captured_first_generation = false;
  int64_t rollbacks_checked = 0;

  double now_us = 0.0;
  for (const auto& dims : ServingTrace()) {
    now_us += kArrivalGapUs;
    engine.SetSimulatedTimeUs(now_us);
    auto timing = engine.Query(dims, device);
    DISC_CHECK_OK(timing.status());
    result.latencies.push_back(timing->total_us);

    // Every completed request's math is audited against the reference
    // evaluator — this is the ground truth for wrong_results_served.
    Tensor input = DeterministicInput(dims[0]);
    auto got = engine.Execute({input});
    DISC_CHECK_OK(got.status());
    auto want = EvaluateGraph(graph, {input});
    DISC_CHECK_OK(want.status());
    ++result.checked_results;
    bool wrong = got->size() != want->size();
    for (size_t o = 0; !wrong && o < got->size(); ++o) {
      wrong = !Tensor::AllClose((*got)[o], (*want)[o], 1e-4, 1e-5);
    }
    if (wrong) ++result.wrong_results_served;

    if (!captured_first_generation && engine.swaps() == 1 &&
        engine.slot().has_executable()) {
      auto reference = engine.Execute({DeterministicInput({8, 64})});
      DISC_CHECK_OK(reference.status());
      first_generation_outputs = std::move(*reference);
      captured_first_generation = true;
    }
    if (captured_first_generation && engine.rollbacks() > rollbacks_checked) {
      // Rollback restores the retained generation: outputs at the hot
      // shape must match the pre-upgrade generation bit for bit.
      rollbacks_checked = engine.rollbacks();
      auto restored = engine.Execute({DeterministicInput({8, 64})});
      DISC_CHECK_OK(restored.status());
      for (size_t o = 0; o < restored->size(); ++o) {
        if (!Tensor::AllClose((*restored)[o], first_generation_outputs[o],
                              0.0, 0.0)) {
          result.rollback_restore_bit_identical = false;
        }
      }
    }
  }
  service.Drain();
  FailpointRegistry::Global().DisarmAll();

  result.validations_run = engine.validations_run();
  result.validations_caught = engine.validations_caught();
  result.swaps = engine.swaps();
  result.rollbacks = engine.rollbacks();
  result.data_loss_events = engine.data_loss_events();
  result.poisoned_skips = engine.poisoned_skips();
  result.fallback_queries = engine.stats().fallback_queries;
  result.compile_jobs = service.stats().compiled;
  result.disk_restores = engine.disk_restores();
  result.cache_quarantined = service.cache().stats().quarantined;
  return result;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  namespace fs = std::filesystem;
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F14", argc, argv);

  std::printf(
      "== F14 (extension): differential admission gate under injected "
      "miscompiles ==\n\n");

  auto graph = EwModel();
  const std::string scratch =
      (fs::temp_directory_path() /
       ("disc_bench_f14_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(scratch);

  struct Leg {
    const char* key;
    const char* label;
    LegConfig config;
  };
  const LikelyDimValues kHints = {{"B", {8}}, {"S", {64}}};
  std::vector<Leg> legs = {
      {"clean", "gated, fault-free", {true, "", "", 0, {}}},
      // Key is "miscompiled", not "miscompile": the CI baseline gate
      // excludes metric names containing "compile." (host wall-clock
      // convention), which would silently drop "miscompile.*".
      {"miscompiled",
       "gated, kernel.miscompile",
       {true, "kernel.miscompile=once", scratch, 0, {}}},
      {"guard_mispredict",
       "gated, kernel.guard.mispredict",
       {true, "kernel.guard.mispredict=once", "", 0, kHints}},
      // Ungated: a clean first generation, then a respecialization whose
      // guard mispredicts (every:2 = the second kernel compile of the
      // leg). Runtime guard verification must catch it, roll back, and
      // quarantine the respecialized key.
      {"rollback",
       "ungated, runtime rollback",
       {false, "kernel.guard.mispredict=every:2", "", 4, {}}},
  };

  bench::Table table({"leg", "p50", "wrong", "validations", "caught",
                      "swaps", "rollbacks", "fallback"});
  for (const Leg& leg : legs) {
    LegResult r = RunLeg(*graph, leg.config);
    const std::string prefix = std::string(leg.key) + ".";
    report.AddMetric(prefix + "p50_us", bench::Percentile(r.latencies, 50),
                     "us");
    report.AddMetric(prefix + "wrong_results_served",
                     static_cast<double>(r.wrong_results_served), "queries");
    report.AddMetric(prefix + "checked_results",
                     static_cast<double>(r.checked_results), "queries");
    report.AddMetric(prefix + "validations_run",
                     static_cast<double>(r.validations_run), "jobs");
    report.AddMetric(prefix + "validations_caught",
                     static_cast<double>(r.validations_caught), "jobs");
    report.AddMetric(prefix + "swaps", static_cast<double>(r.swaps),
                     "swaps");
    report.AddMetric(prefix + "rollbacks", static_cast<double>(r.rollbacks),
                     "rollbacks");
    report.AddMetric(prefix + "data_loss_events",
                     static_cast<double>(r.data_loss_events), "events");
    report.AddMetric(prefix + "fallback_queries",
                     static_cast<double>(r.fallback_queries), "queries");
    report.AddMetric(prefix + "compile_jobs",
                     static_cast<double>(r.compile_jobs), "jobs");
    table.AddRow({leg.label, bench::FmtUs(bench::Percentile(r.latencies, 50)),
                  std::to_string(r.wrong_results_served),
                  std::to_string(r.validations_run),
                  std::to_string(r.validations_caught),
                  std::to_string(r.swaps), std::to_string(r.rollbacks),
                  std::to_string(r.fallback_queries)});
    // Greppable verdict line per leg (chaos-smoke parses these).
    std::printf(
        "leg=%s validation=%s wrong_results_served=%lld rollbacks=%lld "
        "data_loss=%lld swaps=%lld poisoned_skips=%lld bit_identical=%s\n",
        leg.key, r.validations_caught > 0 ? "caught" : "pass",
        static_cast<long long>(r.wrong_results_served),
        static_cast<long long>(r.rollbacks),
        static_cast<long long>(r.data_loss_events),
        static_cast<long long>(r.swaps),
        static_cast<long long>(r.poisoned_skips),
        r.rollback_restore_bit_identical ? "yes" : "NO");
    if (r.wrong_results_served != 0) {
      std::fprintf(stderr, "FAIL: leg %s served %lld wrong results\n",
                   leg.key,
                   static_cast<long long>(r.wrong_results_served));
      return 1;
    }
    if (!r.rollback_restore_bit_identical) {
      std::fprintf(stderr,
                   "FAIL: leg %s rollback did not restore bit-identical "
                   "outputs\n",
                   leg.key);
      return 1;
    }
  }
  std::printf("\n");
  table.Print();

  // Bitrot sub-leg: a prior lifetime persists a clean artifact, then a
  // byte of the recipe rots on disk. The load must be quarantined (and
  // session-poisoned so the key is never re-stored this lifetime), the
  // service recompiles from source, and the fresh candidate passes the
  // gate — correct math throughout, zero disk restores.
  {
    const std::string bitrot_dir = scratch + "_bitrot";
    fs::remove_all(bitrot_dir);
    RunLeg(*graph, {true, "", bitrot_dir, 0, {}});  // warm the cache
    LegResult r =
        RunLeg(*graph, {true, "cache.bitrot=once", bitrot_dir, 0, {}});
    std::printf(
        "\nleg=bitrot validation=%s wrong_results_served=%lld "
        "quarantined=%lld compile_jobs=%lld disk_restores=%lld "
        "swaps=%lld\n",
        r.validations_caught > 0 ? "caught" : "pass",
        static_cast<long long>(r.wrong_results_served),
        static_cast<long long>(r.cache_quarantined),
        static_cast<long long>(r.compile_jobs),
        static_cast<long long>(r.disk_restores),
        static_cast<long long>(r.swaps));
    report.AddMetric("bitrot.wrong_results_served",
                     static_cast<double>(r.wrong_results_served), "queries");
    report.AddMetric("bitrot.quarantined",
                     static_cast<double>(r.cache_quarantined), "entries");
    report.AddMetric("bitrot.compile_jobs",
                     static_cast<double>(r.compile_jobs), "jobs");
    report.AddMetric("bitrot.disk_restores",
                     static_cast<double>(r.disk_restores), "loads");
    report.AddMetric("bitrot.swaps", static_cast<double>(r.swaps), "swaps");
    fs::remove_all(bitrot_dir);
    if (r.wrong_results_served != 0 || r.cache_quarantined == 0 ||
        r.disk_restores != 0) {
      std::fprintf(stderr,
                   "FAIL: bitrot leg wrong=%lld quarantined=%lld "
                   "restores=%lld\n",
                   static_cast<long long>(r.wrong_results_served),
                   static_cast<long long>(r.cache_quarantined),
                   static_cast<long long>(r.disk_restores));
      return 1;
    }
  }

  // Warm-restart sub-leg: the miscompile leg poisoned its key in the
  // persisted quarantine under `scratch`; a fresh service+engine must
  // refuse it with ZERO compiles and keep serving correct math.
  {
    LegResult r = RunLeg(*graph, {true, "", scratch, 0, {}});
    std::printf(
        "\nrestart: quarantined=1 restart_compiles=%lld "
        "restart_poisoned_skips=%lld restart_swaps=%lld "
        "wrong_results_served=%lld\n",
        static_cast<long long>(r.compile_jobs),
        static_cast<long long>(r.poisoned_skips),
        static_cast<long long>(r.swaps),
        static_cast<long long>(r.wrong_results_served));
    report.AddMetric("restart.compile_jobs",
                     static_cast<double>(r.compile_jobs), "jobs");
    report.AddMetric("restart.poisoned_skips",
                     static_cast<double>(r.poisoned_skips), "queries");
    report.AddMetric("restart.swaps", static_cast<double>(r.swaps), "swaps");
    report.AddMetric("restart.wrong_results_served",
                     static_cast<double>(r.wrong_results_served), "queries");
    if (r.compile_jobs != 0 || r.wrong_results_served != 0) {
      std::fprintf(stderr,
                   "FAIL: warm restart recompiled a quarantined key "
                   "(%lld compiles)\n",
                   static_cast<long long>(r.compile_jobs));
      return 1;
    }
  }
  fs::remove_all(scratch);

  // Paired-latency sub-leg: identical fault-free trace with the gate on
  // vs off. The gate validates off-thread, so the median paired per-query
  // delta on the serving thread must be ~0 (only the handful of queries
  // inside the validation window differ — adoption lands one gate later).
  {
    LegResult on = RunLeg(*graph, {true, "", "", 0, {}});
    LegResult off = RunLeg(*graph, {false, "", "", 0, {}});
    std::vector<double> deltas;
    for (size_t i = 0; i < on.latencies.size() && i < off.latencies.size();
         ++i) {
      deltas.push_back(on.latencies[i] - off.latencies[i]);
    }
    double median_delta = bench::Percentile(deltas, 50);
    double p99_delta = bench::Percentile(deltas, 99);
    report.AddMetric("overhead.median_paired_delta_us", median_delta, "us");
    report.AddMetric("overhead.p99_paired_delta_us", p99_delta, "us");
    std::printf(
        "\nvalidation serving-thread overhead: median_paired_delta_us=%.3f "
        "p99_paired_delta_us=%.3f\n",
        median_delta, p99_delta);
  }

  report.AddMeta("requests", std::to_string(kRequests));
  report.AddMeta("validation_latency_us",
                 std::to_string(kValidationLatencyUs));
  return 0;
}
