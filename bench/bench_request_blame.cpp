// Extension experiment F12: per-request causal tracing and tail-latency
// blame attribution.
//
// The same request stream is replayed through the DISC->interpreter
// fallback chain three times — fault-free, with periodic kernel faults
// (degrading batches to the slower fallback leg), and with seeded alloc
// faults (forcing batcher retries with backoff) — and every completed
// request carries a PhaseLedger decomposing its end-to-end latency into
// batch_form / queue / backoff / compile_stall / host_plan / alloc /
// device (DISC_CHECKed by the serving simulator to sum to e2e exactly).
// The TailBlameAggregator then answers "what fraction of p99 does each
// phase own" per schedule, and the shape-aware flight recorder must
// retain the injected outliers — requests anomalous for their own shape
// signature, with annotations/ledgers naming the injected cause — while
// staying within its bounded ring.
//
// All blame shares and counts are simulated-clock quantities, so
// BENCH_F12.json is byte-stable and CI gates it against the committed
// baseline. The recorder's wall-clock overhead (replay with the recorder
// on vs fully off, min-of-K) is reported under the `wall.` prefix, which
// bench_compare excludes from hard-fail comparison.
#include <chrono>

#include "baselines/dynamic_engine.h"
#include "baselines/fallback_chain.h"
#include "baselines/interpreter_engine.h"
#include "bench/bench_util.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/blame.h"
#include "support/failpoint.h"
#include "support/flight_recorder.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {
namespace {

std::unique_ptr<Graph> EncoderBlock(int64_t hidden) {
  auto g = std::make_unique<Graph>("encoder");
  GraphBuilder b(g.get());
  Rng rng(4);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, hidden});
  Tensor w(DType::kF32, {hidden, hidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  Value* h = b.Gelu(b.MatMul(x, b.Constant(w)));
  Value* scale = b.Constant(Tensor::F32({hidden},
                                        std::vector<float>(hidden, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({hidden},
                                       std::vector<float>(hidden, 0.0f)));
  b.Output({b.LayerNorm(h, scale, bias)});
  return g;
}

// The engine under test: DISC behind the fallback chain, with a fixed
// simulated compile stall (the ledger's compile_stall phase) and priced
// allocator calls (the alloc phase — 0 by default so every other bench's
// committed baseline stays byte-stable).
std::unique_ptr<EngineFallbackChain> MakeChain() {
  FallbackChainOptions chain_options;
  chain_options.failure_threshold = 3;
  chain_options.cooldown_us = 3000.0;
  chain_options.compile_stall_us = 400.0;  // fixed simulated stall
  DynamicProfile profile = DynamicProfile::Disc();
  profile.per_alloc_host_us = 0.05;  // price allocator traffic
  return std::make_unique<EngineFallbackChain>(
      std::make_unique<DynamicCompilerEngine>(profile),
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
      chain_options);
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F12", argc, argv);
  const int64_t kHidden = 128;
  std::printf(
      "== F12 (extension): per-request blame attribution + flight "
      "recorder ==\n\n");

  auto graph = EncoderBlock(kHidden);
  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  const DeviceSpec device = DeviceSpec::A10();
  auto requests = SyntheticRequestStream(192, 60.0, 17);

  BatcherOptions options;
  options.max_batch = 8;
  options.max_wait_us = 2000.0;
  options.max_retries = 2;
  options.retry_backoff_us = 2000.0;
  // Pow2 bucketing collapses the padded shapes onto a handful of
  // signatures, so each signature accumulates enough clean samples for
  // the recorder's per-signature baseline to warm up.
  options.pad = PadPolicy::kBucketPow2;

  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options recorder_options;
  recorder_options.capacity = 32;
  recorder_options.min_samples = 4;
  recorder_options.stddev_threshold = 3.0;
  recorder.Configure(recorder_options);

  struct Schedule {
    const char* name;
    const char* spec;         // failpoint spec; "" = fault-free
    bool arm_before_prepare;  // compile faults must hit the first compile
  };
  const Schedule schedules[] = {
      {"fault-free", "", false},
      // Kernel faults hit only the primary leg, so the chain degrades the
      // affected batches to the (slower) interpreter: the injected cause
      // shows up as retained outliers annotated degraded=1.
      {"kernel-faults", "runtime.kernel=every:7:code=unavailable", false},
      // Alloc faults hit the allocator seam both legs share, so they
      // surface as batcher retries: the affected batches pay retry
      // backoff, and the retained outliers' ledgers blame it.
      {"alloc-faults", "runtime.alloc=prob:0.04:seed=11:code=resource-exhausted",
       false},
      // A compile outage at startup: the chain serves degraded while the
      // breaker retries the compile, and the queries that carry those
      // retry attempts pay the simulated stall — the only schedule where
      // the ledger's compile_stall phase is nonzero.
      {"compile-outage", "compiler.compile=always:max=5", true},
  };

  bench::Table table({"schedule", "p50", "p99", "tail blame (p99)",
                      "outliers", "ring"});
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  for (const Schedule& schedule : schedules) {
    failpoints.DisarmAll();
    recorder.Clear();
    recorder.Enable();
    if (schedule.arm_before_prepare && schedule.spec[0] != '\0') {
      DISC_CHECK_OK(failpoints.ArmFromSpec(schedule.spec));
    }
    auto chain = MakeChain();
    DISC_CHECK_OK(chain->Prepare(*graph, {{"B", "S", ""}}));
    if (!schedule.arm_before_prepare && schedule.spec[0] != '\0') {
      DISC_CHECK_OK(failpoints.ArmFromSpec(schedule.spec));
    }
    auto stats = SimulateServing(chain.get(), shape_fn, requests, options,
                                 device);
    DISC_CHECK_OK(stats.status());
    failpoints.DisarmAll();
    recorder.Disable();

    // Every completed request carries a ledger that sums to its e2e
    // latency (the serving simulator DISC_CHECKs each one); the blame
    // shares therefore sum to 1.0 — re-checked here.
    TailBlameAggregator aggregator;
    aggregator.AddAll(stats->completed_requests);
    DISC_CHECK_EQ(aggregator.size(), stats->completed) << schedule.name;
    BlameReport blame = aggregator.Compute(99.0);
    double share_sum = 0.0;
    for (const auto& [phase, share] : blame.tail_shares) share_sum += share;
    DISC_CHECK(std::abs(share_sum - 1.0) < 1e-9)
        << schedule.name << ": tail shares sum to " << share_sum;

    const FlightRecorder::Stats rec = recorder.stats();
    DISC_CHECK_EQ(rec.observed, stats->completed) << schedule.name;
    DISC_CHECK_LE(static_cast<size_t>(rec.retained - rec.dropped),
                  recorder_options.capacity)
        << schedule.name << ": ring bound violated";

    const std::string prefix = std::string(schedule.name) + ".";
    report.AddMetric(prefix + "p50_us", stats->p50_us, "us");
    report.AddMetric(prefix + "p99_us", stats->p99_us, "us");
    report.AddMetric(prefix + "completed",
                     static_cast<double>(stats->completed), "requests");
    report.AddMetric(prefix + "retries", static_cast<double>(stats->retries),
                     "attempts");
    report.AddMetric(prefix + "degraded",
                     static_cast<double>(stats->degraded), "requests");
    for (const auto& [phase, share] : blame.tail_shares) {
      report.AddMetric(prefix + "tail_share." + phase, share, "fraction");
    }
    for (const auto& [phase, share] : blame.overall_shares) {
      report.AddMetric(prefix + "overall_share." + phase, share, "fraction");
    }
    report.AddMetric(prefix + "outliers_retained",
                     static_cast<double>(rec.retained), "records");
    report.AddMetric(prefix + "signatures_tracked",
                     static_cast<double>(rec.signatures), "signatures");

    if (std::string(schedule.name) == "fault-free") {
      // Without faults there is no backoff and nothing degraded, so the
      // backoff share must be exactly zero.
      DISC_CHECK_EQ(stats->retries, 0) << "fault-free run retried";
      for (const auto& [phase, share] : blame.tail_shares) {
        if (phase == "backoff") DISC_CHECK_EQ(share, 0.0);
      }
    } else {
      // The injected faults must surface as retained per-signature
      // outliers whose evidence names the cause: kernel faults degrade
      // batches to the slower fallback leg (degraded=1 annotation); alloc
      // faults make batches pay retry backoff (nonzero ledger backoff).
      DISC_CHECK_GT(rec.retained, 0) << "recorder retained no outliers";
      bool backoff_outlier = false;
      bool degraded_outlier = false;
      for (const FlightRecord& r : recorder.Snapshot()) {
        if (r.ledger.backoff_us > 0.0) backoff_outlier = true;
        for (const auto& [key, value] : r.annotations) {
          if (key == "degraded" && value == "1") degraded_outlier = true;
        }
      }
      if (std::string(schedule.name) == "kernel-faults") {
        DISC_CHECK_GT(stats->degraded, 0) << "kernel faults never fired";
        DISC_CHECK(degraded_outlier)
            << "no retained outlier shows the degraded fallback";
      } else if (std::string(schedule.name) == "alloc-faults") {
        DISC_CHECK_GT(stats->retries, 0) << "alloc faults never retried";
        DISC_CHECK(backoff_outlier) << "no retained outlier blames backoff";
      } else {  // compile-outage
        DISC_CHECK_GT(stats->degraded, 0) << "outage never degraded serving";
        double stall_share = 0.0;
        for (const auto& [phase, share] : blame.overall_shares) {
          if (phase == "compile_stall") stall_share = share;
        }
        DISC_CHECK_GT(stall_share, 0.0)
            << "recovery compiles paid no visible stall";
      }
    }

    // Dominant-phase summary: tail_shares is in ledger order; sort a copy
    // by share descending for the table.
    std::string top_blame;
    auto shares = blame.tail_shares;
    std::sort(shares.begin(), shares.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (size_t i = 0; i < shares.size() && i < 3; ++i) {
      if (shares[i].second <= 0.0) break;
      if (!top_blame.empty()) top_blame += " ";
      top_blame += StrFormat("%s=%.0f%%", shares[i].first.c_str(),
                             shares[i].second * 100.0);
    }
    table.AddRow({schedule.name, bench::FmtUs(stats->p50_us),
                  bench::FmtUs(stats->p99_us), top_blame,
                  std::to_string(rec.retained),
                  StrFormat("%lld/%zu", static_cast<long long>(
                                            recorder.Snapshot().size()),
                            recorder_options.capacity)});
  }
  table.Print();

  // Recorder overhead: wall-clock cost of leaving the flight recorder
  // always-on, measured on a *healthy* steady stream (uniform arrivals,
  // one sequence length — nothing anomalous, so nothing is retained and
  // the cost is purely the per-batch baseline update, which is what an
  // always-on recorder pays in the common case). A single ~150us replay
  // is dominated by scheduler/frequency noise, so each timed sample is a
  // block of many replays, the two legs are interleaved (so drift hits
  // both equally), and the minimum block per leg is kept. The wall.
  // prefix keeps this out of CI's byte-stable comparison.
  std::vector<Request> steady;
  for (int i = 0; i < 192; ++i) {
    Request r;
    r.id = i;
    r.seq_len = 64;
    r.arrival_us = 60.0 * i;
    steady.push_back(r);
  }
  const int kPairs = 25;
  const int kReplaysPerBlock = 16;
  auto replay_block_us = [&](bool recorder_on) {
    recorder.Clear();
    if (recorder_on) {
      recorder.Enable();
    } else {
      recorder.Disable();
    }
    std::vector<std::unique_ptr<EngineFallbackChain>> chains;
    for (int i = 0; i < kReplaysPerBlock; ++i) {
      chains.push_back(MakeChain());
      DISC_CHECK_OK(chains.back()->Prepare(*graph, {{"B", "S", ""}}));
    }
    auto start = std::chrono::steady_clock::now();
    for (auto& chain : chains) {
      DISC_CHECK_OK(SimulateServing(chain.get(), shape_fn, steady, options,
                                    device)
                        .status());
    }
    auto end = std::chrono::steady_clock::now();
    recorder.Disable();
    return std::chrono::duration<double, std::micro>(end - start).count() /
           kReplaysPerBlock;
  };
  // Median of adjacent-in-time (off, on) pair deltas: machine drift moves
  // both legs of a pair together, so the paired delta isolates the
  // recorder cost far better than comparing two independent minima.
  std::vector<double> offs;
  std::vector<double> deltas;
  for (int pair = 0; pair < kPairs; ++pair) {
    const double off = replay_block_us(false);
    const double on = replay_block_us(true);
    offs.push_back(off);
    deltas.push_back(on - off);
  }
  std::sort(offs.begin(), offs.end());
  std::sort(deltas.begin(), deltas.end());
  const double off_us = offs[offs.size() / 2];
  const double delta_us = deltas[deltas.size() / 2];
  const double overhead_pct = off_us > 0.0 ? delta_us / off_us * 100.0 : 0.0;
  report.AddMetric("wall.replay_recorder_off_us", off_us, "us");
  report.AddMetric("wall.replay_recorder_on_us", off_us + delta_us, "us");
  report.AddMetric("wall.recorder_overhead_pct", overhead_pct, "%");
  std::printf(
      "\nrecorder overhead: %.2f%% (+%.2fus on a %.1fus replay; median of "
      "%d interleaved pairs x %d replays)\n",
      overhead_pct, delta_us, off_us, kPairs, kReplaysPerBlock);

  // Direct hot-path cost, free of end-to-end measurement noise: a warm,
  // non-anomalous signature observed batch-by-batch — the exact call the
  // serving loop makes per formed batch when nothing is wrong.
  {
    recorder.Clear();
    recorder.Enable();
    std::vector<CompletedRequest> warm(8);
    for (size_t i = 0; i < warm.size(); ++i) {
      warm[i].trace_id = i + 1;
      warm[i].e2e_us = 500.0 + static_cast<double>(i);
      warm[i].ledger.device_us = warm[i].e2e_us;
    }
    const std::string sig = "8x64";
    auto no_annotations = [] {
      return std::vector<std::pair<std::string, std::string>>{};
    };
    for (int i = 0; i < 64; ++i) {
      recorder.ObserveBatch(sig, 0.0, warm.data(), warm.size(),
                            no_annotations);
    }
    const int kCalls = 100000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCalls; ++i) {
      recorder.ObserveBatch(sig, 0.0, warm.data(), warm.size(),
                            no_annotations);
    }
    auto t1 = std::chrono::steady_clock::now();
    DISC_CHECK_EQ(recorder.stats().retained, 0);  // warm and non-anomalous
    recorder.Disable();
    recorder.Clear();
    const double ns_per_request =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(kCalls) * static_cast<double>(warm.size()));
    report.AddMetric("wall.observe_ns_per_request", ns_per_request, "ns");
    std::printf(
        "observe hot path: %.1fns per request (%.2f%% of the %.2fus "
        "per-request replay cost)\n",
        ns_per_request,
        off_us > 0.0 ? ns_per_request * 192.0 / (off_us * 1000.0) * 100.0
                     : 0.0,
        off_us / 192.0);
  }

  std::printf(
      "\nReading: the ledger turns p99 from a number into an itemized\n"
      "bill — fault-free, the tail is batch-formation wait; kernel faults\n"
      "shift blame toward device/host time (degraded interpreter batches);\n"
      "alloc faults shift it to retry backoff; a compile outage surfaces\n"
      "as degraded serving plus compile-stall on the recovery queries.\n"
      "The flight recorder keeps full evidence only for requests\n"
      "anomalous for their own shape signature, at always-on cost (one\n"
      "relaxed atomic when idle).\n");
  return 0;
}
