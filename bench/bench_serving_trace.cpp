// Experiment F6: serving-latency distribution under a realistic mixed-shape
// trace (Zipf-ish hot shapes + long tail), per system: p50 / p95 / p99 and
// worst query. Tail latency is where per-shape compilation hurts most —
// a cache-missing query stalls for a full compilation.
#include "baselines/dynamic_engine.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace disc;
  // --trace=<file>: capture engine-query and runtime spans as Chrome-trace
  // JSON while the latency distributions are measured.
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F6", argc, argv);
  std::printf("== F6: serving latency distribution (trace of 64 queries) ==\n\n");

  ModelConfig config;
  config.trace_length = 64;
  const DeviceSpec device = DeviceSpec::A10();

  for (const char* model_name : {"bert", "seq2seq-step"}) {
    Model model;
    for (Model& m : BuildModelSuite(config)) {
      if (m.name == model_name) model = std::move(m);
    }
    std::printf("-- %s --\n", model.name.c_str());
    bench::Table table({"system", "p50", "p95", "p99", "max", "mean"});
    for (const std::string& system : AllBaselineNames()) {
      if (system == "TVM") continue;  // tuning stalls dwarf the axis; see F4
      auto engine = MakeBaseline(system);
      DISC_CHECK_OK(engine.status());
      auto latencies = bench::ReplayTrace(engine->get(), model, device);
      DISC_CHECK_OK(latencies.status());
      std::vector<double> l = *latencies;
      std::string prefix = std::string(model_name) + "." + system + ".";
      report.AddMetric(prefix + "p50_us", bench::Percentile(l, 50), "us");
      report.AddMetric(prefix + "p99_us", bench::Percentile(l, 99), "us");
      report.AddMetric(prefix + "mean_us", bench::Mean(l), "us");
      table.AddRow({system, bench::FmtUs(bench::Percentile(l, 50)),
                    bench::FmtUs(bench::Percentile(l, 95)),
                    bench::FmtUs(bench::Percentile(l, 99)),
                    bench::FmtUs(*std::max_element(l.begin(), l.end())),
                    bench::FmtUs(bench::Mean(l))});
    }
    table.Print();
    std::printf("\n");
  }
  // Ablation: the launch-plan cache on the same traces. Hot shapes repeat
  // (Zipf head), so most queries replay a memoized plan; the tail still
  // builds plans but never stalls (plan build is host shape math, not a
  // compilation).
  std::printf("-- launch-plan cache ablation (DISC) --\n");
  for (const char* model_name : {"bert", "seq2seq-step"}) {
    Model model;
    for (Model& m : BuildModelSuite(config)) {
      if (m.name == model_name) model = std::move(m);
    }
    bench::Table table(
        {"config", "p50", "p99", "mean", "plan hits"});
    for (bool use_plan_cache : {true, false}) {
      DynamicProfile profile = DynamicProfile::Disc();
      profile.use_plan_cache = use_plan_cache;
      DynamicCompilerEngine engine(profile);
      auto latencies = bench::ReplayTrace(&engine, model, device);
      DISC_CHECK_OK(latencies.status());
      std::vector<double> l = *latencies;
      const EngineStats& stats = engine.stats();
      table.AddRow(
          {use_plan_cache ? "plan cache on" : "plan cache off",
           bench::FmtUs(bench::Percentile(l, 50)),
           bench::FmtUs(bench::Percentile(l, 99)), bench::FmtUs(bench::Mean(l)),
           use_plan_cache
               ? bench::Fmt("%.0f%%", stats.launch_plan_hit_rate() * 100)
               : std::string("off")});
    }
    std::printf("%s:\n", model.name.c_str());
    table.Print();
  }
  std::printf(
      "\nReading: interpreters have flat but high distributions (per-op "
      "overhead);\nstatic compilers have good medians and catastrophic "
      "tails (compile stalls);\nDISC is flat and low — and with the plan "
      "cache its repeated-shape\nqueries also skip the per-query host "
      "shape program.\n");
  return 0;
}
