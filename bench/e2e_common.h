// Shared driver for the headline end-to-end comparison (experiments T1/T2):
// the 6-model suite against all 8 systems on one device, reporting
// per-model mean latency and speedup over PyTorch — the layout of the
// paper's main table.
//
// Two latency views are printed:
//   * steady-state — caches warm (half the trace replayed first); the view
//     the paper reports, favourable to the static compilers;
//   * cold-trace   — every compile stall counted; what a serving system
//     actually pays on a fresh shape mix.
#ifndef DISC_BENCH_E2E_COMMON_H_
#define DISC_BENCH_E2E_COMMON_H_

#include <cmath>
#include <map>

#include "bench/bench_util.h"

namespace disc {
namespace bench {

inline int RunE2E(const DeviceSpec& device) {
  ModelConfig config;
  config.trace_length = 64;
  std::vector<Model> suite = BuildModelSuite(config);
  const auto& systems = AllBaselineNames();

  std::printf("== End-to-end inference on %s (experiment %s) ==\n",
              device.name.c_str(), device.name == "A10" ? "T1" : "T2");
  std::printf("%zu models x %zu systems, %lld queries per trace\n\n",
              suite.size(), systems.size(),
              static_cast<long long>(config.trace_length));

  // model -> system -> mean latency.
  std::map<std::string, std::map<std::string, double>> steady;
  std::map<std::string, std::map<std::string, double>> cold;

  for (const Model& model : suite) {
    for (const std::string& system : systems) {
      auto engine = MakeBaseline(system);
      DISC_CHECK_OK(engine.status());
      // Cold pass: fresh engine, all stalls counted.
      auto cold_lat = ReplayTrace(engine->get(), model, device);
      DISC_CHECK_OK(cold_lat.status());
      cold[model.name][system] = Mean(*cold_lat);
      // Steady pass: replay again on the now-warm engine.
      std::vector<double> warm_lat;
      for (const ShapeSet& shapes : model.trace) {
        auto timing = (*engine)->Query(shapes, device);
        DISC_CHECK_OK(timing.status());
        warm_lat.push_back(timing->total_us);
      }
      steady[model.name][system] = Mean(warm_lat);
    }
  }

  for (bool is_steady : {true, false}) {
    const auto& data = is_steady ? steady : cold;
    std::printf("-- %s latency (mean us) --\n",
                is_steady ? "steady-state (shape caches warm)"
                          : "cold trace (compile stalls included)");
    std::vector<std::string> header = {"model"};
    for (const auto& s : systems) header.push_back(s);
    Table lat_table(header);
    for (const Model& model : suite) {
      std::vector<std::string> row = {model.name};
      for (const auto& s : systems) row.push_back(FmtUs(data.at(model.name).at(s)));
      lat_table.AddRow(std::move(row));
    }
    lat_table.Print();

    std::printf("\n-- DISC speedup over each system (%s) --\n",
                is_steady ? "steady-state" : "cold");
    Table sp_table(header);
    std::map<std::string, double> geo_acc;
    std::map<std::string, double> max_sp;
    for (const Model& model : suite) {
      std::vector<std::string> row = {model.name};
      double disc_lat = data.at(model.name).at("DISC");
      for (const auto& s : systems) {
        double speedup = data.at(model.name).at(s) / disc_lat;
        row.push_back(Fmt("%.2fx", speedup));
        geo_acc[s] += std::log(speedup);
        max_sp[s] = std::max(max_sp[s], speedup);
      }
      sp_table.AddRow(std::move(row));
    }
    std::vector<std::string> geo_row = {"geomean"};
    std::vector<std::string> max_row = {"max"};
    for (const auto& s : systems) {
      geo_row.push_back(
          Fmt("%.2fx", std::exp(geo_acc[s] / static_cast<double>(suite.size()))));
      max_row.push_back(Fmt("%.2fx", max_sp[s]));
    }
    sp_table.AddRow(std::move(geo_row));
    sp_table.AddRow(std::move(max_row));
    sp_table.Print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference (%s, avg speedup vs PyTorch/TorchScript/TVM/ONNXRT/"
      "XLA/Inductor/TensorRT):\n  %s\n",
      device.name.c_str(),
      device.name == "A10"
          ? "3.54x / 3.12x / 1.95x / 1.47x / 1.24x / 2.93x / 1.46x"
          : "up to 6.95x / 6.25x / 4.08x / 2.04x / 2.06x / 7.92x / 4.16x");
  return 0;
}

}  // namespace bench
}  // namespace disc

#endif  // DISC_BENCH_E2E_COMMON_H_
