// Extension experiment F13: the kernel-level performance observatory.
//
// One elementwise chain (with scalar broadcasts, so the exact-shape
// variant has real modeled headroom over vec4) serves a skewed shape
// trace — a hot batch plus ragged stragglers — under three compilation
// regimes:
//
//   * nospec:   specialization disabled. Every launch falls back to the
//               generic variant; the counterfactual regret audit must
//               name the vectorized variant each hot kernel was denied
//               (best_compiled=false) with positive regret.
//   * spec:     full specialization. vec4 is compiled and selected at the
//               hot shape, and its audited regret is exactly zero.
//   * feedback: the engine starts from the nospec configuration with
//               shape-speculation feedback armed. The audited regret is
//               fed back through NoteKernelRegret, which respecializes
//               (speculative exact-shape variants for the hot batch) and
//               drives the hot kernel's regret to ~0.
//
// All ledger contents and audit verdicts are DeviceModel quantities, so
// BENCH_F13.json is byte-stable and CI gates it against the committed
// baseline (±10%, wall.* excluded). The ledger's wall-clock overhead is
// measured with the F12 methodology — interleaved off/on replay blocks,
// median of paired deltas — plus a direct ns-loop on the disabled check
// (one relaxed atomic load, the only cost a quiet launch path pays).
#include <chrono>

#include "baselines/dynamic_engine.h"
#include "bench/bench_util.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/launch_plan.h"
#include "support/kernel_profile.h"
#include "support/string_util.h"

namespace disc {
namespace {

constexpr int64_t kHidden = 512;
constexpr int64_t kHotBatch = 1024;

// Elementwise chain with scalar broadcasts: the group is not
// broadcast-free, so the speculative exact-shape variant (statically
// resolved indexing) models faster than vec4, which models faster than
// generic — three distinct rungs for the audit to rank.
std::unique_ptr<Graph> BuildChain() {
  auto g = std::make_unique<Graph>("observatory");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kHidden});
  Value* h = b.Mul(b.Add(x, x), b.ScalarF32(0.5f));
  h = b.Add(b.Exp(h), b.ScalarF32(1.0f));
  b.Output({b.Mul(b.Relu(h), b.ScalarF32(1.1f))});
  return g;
}

// Hot batch dominates (passes the feedback confidence bar); ragged
// stragglers keep multiple signatures live in the ledger.
std::vector<std::vector<std::vector<int64_t>>> Trace() {
  std::vector<std::vector<std::vector<int64_t>>> trace;
  const int64_t batches[] = {kHotBatch, kHotBatch, kHotBatch, kHotBatch,
                             768,       kHotBatch, 257,       kHotBatch,
                             431,       kHotBatch, kHotBatch, kHotBatch};
  for (int64_t b : batches) trace.push_back({{b, kHidden}});
  return trace;
}

std::string HotSignature() {
  return ShapeSignature({{kHotBatch, kHidden}});
}

// Replays the trace through `exe` with the ledger on and returns the
// audit, sorted by total regret descending.
std::vector<KernelRegret> ReplayAndAudit(const Executable& exe) {
  KernelProfileLedger& ledger = KernelProfileLedger::Global();
  ledger.Clear();
  ledger.Enable();
  for (const auto& shapes : Trace()) {
    DISC_CHECK_OK(exe.RunWithShapes(shapes).status());
  }
  ledger.Disable();
  return ledger.AuditRegret(DeviceSpec::A10());
}

// The audit row for the hot signature (every leg must have exactly one
// kernel, so the hot row is unambiguous).
const KernelRegret& HotRegret(const std::vector<KernelRegret>& audit) {
  for (const KernelRegret& r : audit) {
    if (r.signature == HotSignature()) return r;
  }
  DISC_CHECK(false) << "hot signature missing from audit";
  return audit.front();
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F13", argc, argv);
  std::printf("== F13 (extension): kernel observatory + variant-regret "
              "audit ==\n\n");

  auto graph = BuildChain();
  const std::vector<std::vector<std::string>> labels = {{"B", ""}};
  KernelProfileLedger& ledger = KernelProfileLedger::Global();

  bench::Table table({"leg", "hot variant", "hot modeled", "best variant",
                      "regret/launch", "regret share"});
  auto add_leg = [&](const char* leg, const KernelRegret& hot) {
    const std::string prefix = std::string(leg) + ".";
    report.AddMetric(prefix + "hot_selected_us", hot.selected_us, "us");
    report.AddMetric(prefix + "hot_best_us", hot.best_us, "us");
    report.AddMetric(prefix + "hot_regret_us", hot.regret_us, "us");
    report.AddMetric(prefix + "hot_regret_share", hot.regret_share,
                     "fraction");
    report.AddMetric(prefix + "hot_launches",
                     static_cast<double>(hot.launches), "launches");
    table.AddRow({leg,
                  hot.selected_variant + (hot.best_compiled ? "" : " (best "
                                          "denied)"),
                  bench::FmtUs(hot.selected_us), hot.best_variant,
                  bench::FmtUs(hot.regret_us),
                  bench::Fmt("%.3f", hot.regret_share)});
  };

  // --- nospec: the generic-only compile leaves modeled time on the table.
  double nospec_regret_us = 0.0;
  {
    auto exe = DiscCompiler::Compile(*graph, labels,
                                     CompileOptions::NoSpecialization());
    DISC_CHECK_OK(exe.status());
    std::vector<KernelRegret> audit = ReplayAndAudit(**exe);
    DISC_CHECK(!audit.empty());
    // The top-regret row IS the hot kernel, and it names the vectorized
    // variant it was denied at compile time.
    const KernelRegret& top = audit.front();
    DISC_CHECK_EQ(top.signature, HotSignature());
    DISC_CHECK_EQ(top.selected_variant, "generic");
    DISC_CHECK_EQ(top.best_variant, "vec4");
    DISC_CHECK(!top.best_compiled) << "vec4 should not have been compiled";
    DISC_CHECK_GT(top.regret_us, 0.0);
    nospec_regret_us = top.regret_us;
    add_leg("nospec", top);
    report.AddMetric("nospec.total_regret_us", top.total_regret_us, "us");
    ledger.Clear();  // entries reference *exe — fence before it dies
  }

  // --- spec: vec4 is compiled, selected, and best — regret collapses.
  {
    auto exe = DiscCompiler::Compile(*graph, labels, CompileOptions());
    DISC_CHECK_OK(exe.status());
    std::vector<KernelRegret> audit = ReplayAndAudit(**exe);
    const KernelRegret& hot = HotRegret(audit);
    DISC_CHECK_EQ(hot.selected_variant, "vec4");
    DISC_CHECK_EQ(hot.regret_us, 0.0) << "specialized hot shape has regret";
    add_leg("spec", hot);
    ledger.Clear();
  }

  // --- feedback: regret observed at runtime respecializes the engine.
  {
    DynamicProfile profile = DynamicProfile::Disc();
    profile.compile_options = CompileOptions::NoSpecialization();
    // 16 > the 12 replay queries, so plain observation never trips the
    // profile on its own; only the regret note (weight 4) reaches the bar.
    profile.feedback_after = 16;
    DynamicCompilerEngine engine(profile);
    DISC_CHECK_OK(engine.Prepare(*graph, labels));

    const DeviceSpec device = DeviceSpec::A10();
    auto replay_queries = [&] {
      ledger.Clear();
      ledger.Enable();
      for (const auto& shapes : Trace()) {
        DISC_CHECK_OK(engine.Query(shapes, device).status());
      }
      ledger.Disable();
    };
    replay_queries();
    std::vector<KernelRegret> before = ledger.AuditRegret(device);
    const KernelRegret hot_before = HotRegret(before);
    DISC_CHECK_EQ(hot_before.best_variant, "vec4");
    DISC_CHECK_GT(hot_before.regret_us, 0.0);
    DISC_CHECK_EQ(engine.respecializations(), 0)
        << "12 queries stay below min_observations; nothing should trip yet";

    // Close the loop: the audit's verdict becomes a respecialization. The
    // swap destroys the audited executable — the ledger Forgets its
    // entries automatically, so the later audit only sees the new one.
    ledger.Clear();
    DISC_CHECK_OK(engine.NoteKernelRegret({{kHotBatch, kHidden}},
                                          hot_before.regret_us));
    DISC_CHECK_GE(engine.respecializations(), 1)
        << "regret feedback never triggered a respecialization";

    replay_queries();
    std::vector<KernelRegret> after = ledger.AuditRegret(device);
    const KernelRegret hot_after = HotRegret(after);
    // The respecialized executable runs a speculative exact-shape variant
    // at the hot batch; nothing admissible models faster.
    DISC_CHECK(StartsWith(hot_after.selected_variant, "exact_"))
        << "hot shape still runs " << hot_after.selected_variant;
    DISC_CHECK_EQ(hot_after.regret_us, 0.0);
    DISC_CHECK_LT(hot_after.selected_us, hot_before.selected_us);

    report.AddMetric("feedback.hot_regret_before_us", hot_before.regret_us,
                     "us");
    report.AddMetric("feedback.hot_regret_after_us", hot_after.regret_us,
                     "us");
    report.AddMetric("feedback.respecializations",
                     static_cast<double>(engine.respecializations()),
                     "count");
    add_leg("feedback", hot_after);
    ledger.Clear();
  }
  table.Print();
  std::printf("\nnospec regret at hot shape: %.2fus/launch, recovered by "
              "specialization and by regret-fed respecialization\n",
              nospec_regret_us);

  // --- ledger overhead (wall-clock; excluded from CI comparison). ------
  // F12 methodology: interleaved (off, on) replay blocks, median of
  // paired deltas, so machine drift cancels within each pair.
  {
    auto exe = DiscCompiler::Compile(*graph, labels, CompileOptions());
    DISC_CHECK_OK(exe.status());
    const auto trace = Trace();
    const int kPairs = 25;
    const int kReplaysPerBlock = 16;
    auto replay_block_us = [&](bool ledger_on) {
      ledger.Clear();
      if (ledger_on) {
        ledger.Enable();
      } else {
        ledger.Disable();
      }
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kReplaysPerBlock; ++i) {
        for (const auto& shapes : trace) {
          DISC_CHECK_OK((*exe)->RunWithShapes(shapes).status());
        }
      }
      auto end = std::chrono::steady_clock::now();
      ledger.Disable();
      return std::chrono::duration<double, std::micro>(end - start).count() /
             kReplaysPerBlock;
    };
    std::vector<double> offs;
    std::vector<double> deltas;
    for (int pair = 0; pair < kPairs; ++pair) {
      const double off = replay_block_us(false);
      const double on = replay_block_us(true);
      offs.push_back(off);
      deltas.push_back(on - off);
    }
    std::sort(offs.begin(), offs.end());
    std::sort(deltas.begin(), deltas.end());
    const double off_us = offs[offs.size() / 2];
    const double delta_us = deltas[deltas.size() / 2];
    const double overhead_pct =
        off_us > 0.0 ? delta_us / off_us * 100.0 : 0.0;
    report.AddMetric("wall.replay_ledger_off_us", off_us, "us");
    report.AddMetric("wall.replay_ledger_on_us", off_us + delta_us, "us");
    report.AddMetric("wall.ledger_overhead_pct", overhead_pct, "%");
    std::printf("\nledger overhead: %.2f%% (+%.2fus on a %.1fus trace "
                "replay; median of %d interleaved pairs x %d replays)\n",
                overhead_pct, delta_us, off_us, kPairs, kReplaysPerBlock);

    // The disabled path is one relaxed atomic load per Run — time it
    // directly, free of replay noise.
    ledger.Disable();
    const int kChecks = 10000000;
    int64_t armed = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChecks; ++i) {
      if (ledger.enabled()) ++armed;
    }
    auto t1 = std::chrono::steady_clock::now();
    DISC_CHECK_EQ(armed, 0);
    const double ns_per_check =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kChecks;
    report.AddMetric("wall.disabled_check_ns", ns_per_check, "ns");
    std::printf("disabled-ledger check: %.2fns (one relaxed atomic load)\n",
                ns_per_check);
    ledger.Clear();
  }

  std::printf(
      "\nReading: under real traffic the ledger knows what every fused\n"
      "kernel ran and cost per (variant, shape); the counterfactual audit\n"
      "prices the variants it did NOT run. Denied-variant regret\n"
      "(best_compiled=false) blames the compile-time configuration, and\n"
      "feeding it into ShapeProfileFeedback closes the loop: the engine\n"
      "respecializes toward the shapes that are actually paying.\n");
  return 0;
}
