// Experiment F1 (motivation figure): what dynamism costs an interpreter.
//
// A memory-bound transformer glue block (bias + GELU + layernorm + softmax)
// swept over sequence length, eager vs DISC. Shows the two mechanisms the
// paper's introduction motivates: per-op kernel launches and intermediate
// global-memory traffic, both eliminated by fusion.
//
// Uses google-benchmark to additionally measure the *real* host-side cost
// of this repo's dispatch path (shape binding + guard evaluation + launch
// planning) — the part of the runtime that is not simulated.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace disc {
namespace {

std::unique_ptr<Graph> GlueBlock() {
  auto g = std::make_unique<Graph>("glue");
  GraphBuilder b(g.get());
  Rng rng(3);
  const int64_t kHidden = 256;
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  Tensor bias_t(DType::kF32, {kHidden});
  for (int64_t i = 0; i < kHidden; ++i) bias_t.f32_data()[i] = rng.Normal();
  Value* bias = b.Constant(bias_t);
  Value* scale = b.Constant(Tensor::F32({kHidden},
                                        std::vector<float>(kHidden, 1.0f)));
  Value* zero = b.Constant(Tensor::F32({kHidden},
                                       std::vector<float>(kHidden, 0.0f)));
  Value* h = b.Gelu(b.Add(x, bias));
  Value* ln = b.LayerNorm(h, scale, zero);
  b.Output({b.Softmax(ln)});
  return g;
}

void PrintSweep(bench::JsonReporter* report) {
  auto graph = GlueBlock();
  std::vector<std::vector<std::string>> labels = {{"B", "S", ""}};

  auto eager = MakeBaseline("PyTorch");
  auto disc_engine = MakeBaseline("DISC");
  DISC_CHECK_OK(eager.status());
  DISC_CHECK_OK(disc_engine.status());
  DISC_CHECK_OK((*eager)->Prepare(*graph, labels));
  DISC_CHECK_OK((*disc_engine)->Prepare(*graph, labels));

  std::printf("== F1: interpreter vs DISC on a memory-bound glue block ==\n");
  bench::Table table({"seq", "eager us", "eager launches", "eager MB",
                      "DISC us", "DISC launches", "DISC MB", "speedup"});
  DeviceSpec device = DeviceSpec::T4();
  for (int64_t seq : {32, 64, 128, 256, 512, 1024}) {
    auto te = (*eager)->Query({{4, seq, 256}}, device);
    auto td = (*disc_engine)->Query({{4, seq, 256}}, device);
    DISC_CHECK_OK(te.status());
    DISC_CHECK_OK(td.status());
    std::string prefix = "seq" + std::to_string(seq) + ".";
    report->AddMetric(prefix + "eager_us", te->total_us, "us");
    report->AddMetric(prefix + "disc_us", td->total_us, "us");
    report->AddMetric(prefix + "eager_launches",
                      static_cast<double>(te->kernel_launches), "count");
    report->AddMetric(prefix + "disc_launches",
                      static_cast<double>(td->kernel_launches), "count");
    table.AddRow({std::to_string(seq), bench::Fmt("%.1f", te->total_us),
                  std::to_string(te->kernel_launches),
                  bench::Fmt("%.2f", te->bytes_moved / 1e6),
                  bench::Fmt("%.1f", td->total_us),
                  std::to_string(td->kernel_launches),
                  bench::Fmt("%.2f", td->bytes_moved / 1e6),
                  bench::Fmt("%.2fx", te->total_us / td->total_us)});
  }
  table.Print();
  std::printf("\n");
}

// Real wall-clock cost of the runtime's per-query host path.
void BM_HostDispatchPath(benchmark::State& state) {
  static auto graph = GlueBlock();
  static auto engine = [] {
    auto e = MakeBaseline("DISC");
    DISC_CHECK_OK(e.status());
    DISC_CHECK_OK((*e)->Prepare(*graph, {{"B", "S", ""}}));
    return std::move(*e);
  }();
  int64_t seq = state.range(0);
  double sim_us = 0;
  for (auto _ : state) {
    auto timing = engine->Query({{4, seq, 256}}, DeviceSpec::T4());
    DISC_CHECK_OK(timing.status());
    sim_us = timing->total_us;
    benchmark::DoNotOptimize(timing->total_us);
  }
  state.counters["sim_us"] = sim_us;
}
BENCHMARK(BM_HostDispatchPath)->Arg(32)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  disc::bench::JsonReporter report("F1", argc, argv);
  disc::PrintSweep(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
