// Experiment T2: headline end-to-end comparison on the T4 device model.
#include "bench/e2e_common.h"

int main() { return disc::bench::RunE2E(disc::DeviceSpec::T4()); }
