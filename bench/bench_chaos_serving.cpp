// Extension experiment F9: chaos serving — graceful degradation under
// seeded fault injection.
//
// The same request stream is replayed through the DISC->interpreter
// fallback chain under four failpoint schedules: fault-free, a compile
// outage (the compiler's first 5 attempts fail, then heal), probabilistic
// allocator exhaustion, and periodic kernel faults. The serving stack must
// degrade, not die: retry-with-backoff absorbs transient errors, the
// circuit breaker stops re-trying a broken compiler, load shedding bounds
// the queue, and every submitted request is accounted for exactly once.
// Reported per schedule: latency percentiles, completion/degradation
// accounting, and p99 inflation relative to the fault-free run.
//
// All metrics are simulated-clock quantities (the compile stall is a fixed
// simulated constant, not wall time), so BENCH_F9.json is byte-stable and
// CI gates it against the committed baseline.
#include "baselines/dynamic_engine.h"
#include "baselines/fallback_chain.h"
#include "baselines/interpreter_engine.h"
#include "bench/bench_util.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {
namespace {

std::unique_ptr<Graph> EncoderBlock(int64_t hidden) {
  auto g = std::make_unique<Graph>("encoder");
  GraphBuilder b(g.get());
  Rng rng(4);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, hidden});
  Tensor w(DType::kF32, {hidden, hidden});
  for (int64_t i = 0; i < w.num_elements(); ++i) {
    w.f32_data()[i] = rng.Normal(0, 0.1f);
  }
  Value* h = b.Gelu(b.MatMul(x, b.Constant(w)));
  Value* scale = b.Constant(Tensor::F32({hidden},
                                        std::vector<float>(hidden, 1.0f)));
  Value* bias = b.Constant(Tensor::F32({hidden},
                                       std::vector<float>(hidden, 0.0f)));
  b.Output({b.LayerNorm(h, scale, bias)});
  return g;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  using namespace disc;
  bench::TraceFlag trace_flag(argc, argv);
  bench::JsonReporter report("F9", argc, argv);
  const int64_t kHidden = 128;
  std::printf("== F9 (extension): chaos serving under fault injection ==\n\n");

  auto graph = EncoderBlock(kHidden);
  auto shape_fn = [kHidden](int64_t batch, int64_t seq) {
    return std::vector<std::vector<int64_t>>{{batch, seq, kHidden}};
  };
  const DeviceSpec device = DeviceSpec::A10();

  // One stream for every schedule: Zipf lengths, ~60us arrival gaps, and a
  // loose per-request deadline that only trips when faults stall serving.
  auto requests = SyntheticRequestStream(192, 60.0, 17);
  for (Request& r : requests) r.deadline_us = r.arrival_us + 80000.0;

  struct Schedule {
    const char* name;
    const char* spec;        // failpoint spec; "" = fault-free
    bool arm_before_prepare; // compile faults must hit the first compile
  };
  const Schedule schedules[] = {
      {"fault-free", "", false},
      {"compile-outage", "compiler.compile=always:max=5", true},
      {"alloc-faults",
       "runtime.alloc=prob:0.04:seed=11:code=resource-exhausted", false},
      {"kernel-faults", "runtime.kernel=every:7:code=unavailable", false},
  };

  bench::Table table({"schedule", "p50", "p99", "ok", "degraded", "retries",
                      "shed", "missed", "failed", "breaker"});
  double fault_free_p99 = 0.0;
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  for (const Schedule& schedule : schedules) {
    failpoints.DisarmAll();
    if (schedule.arm_before_prepare && schedule.spec[0] != '\0') {
      DISC_CHECK_OK(failpoints.ArmFromSpec(schedule.spec));
    }
    FallbackChainOptions chain_options;
    chain_options.failure_threshold = 3;
    chain_options.cooldown_us = 3000.0;
    chain_options.compile_stall_us = 400.0;  // fixed simulated stall
    EngineFallbackChain chain(
        std::make_unique<DynamicCompilerEngine>(DynamicProfile::Disc()),
        std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch()),
        chain_options);
    DISC_CHECK_OK(chain.Prepare(*graph, {{"B", "S", ""}}));
    if (!schedule.arm_before_prepare && schedule.spec[0] != '\0') {
      DISC_CHECK_OK(failpoints.ArmFromSpec(schedule.spec));
    }

    BatcherOptions options;
    options.max_batch = 8;
    options.max_wait_us = 2000.0;
    options.max_retries = 2;
    options.retry_backoff_us = 500.0;
    options.max_queue_depth = 64;
    auto stats =
        SimulateServing(&chain, shape_fn, requests, options, device);
    DISC_CHECK_OK(stats.status());
    const int64_t fires = failpoints.Snapshot().empty()
                              ? 0
                              : failpoints.Snapshot()[0].fires;
    failpoints.DisarmAll();

    // The robustness contract, enforced on every schedule: full request
    // accounting and no crash (reaching here is the no-crash half).
    DISC_CHECK_EQ(stats->submitted, stats->completed + stats->shed +
                                        stats->deadline_missed +
                                        stats->failed)
        << schedule.name;

    const std::string prefix = std::string(schedule.name) + ".";
    report.AddMetric(prefix + "p50_us", stats->p50_us, "us");
    report.AddMetric(prefix + "p99_us", stats->p99_us, "us");
    report.AddMetric(prefix + "completed",
                     static_cast<double>(stats->completed), "requests");
    report.AddMetric(prefix + "degraded",
                     static_cast<double>(stats->degraded), "requests");
    report.AddMetric(prefix + "retries", static_cast<double>(stats->retries),
                     "attempts");
    report.AddMetric(prefix + "shed", static_cast<double>(stats->shed),
                     "requests");
    report.AddMetric(prefix + "deadline_missed",
                     static_cast<double>(stats->deadline_missed), "requests");
    report.AddMetric(prefix + "failed", static_cast<double>(stats->failed),
                     "requests");
    report.AddMetric(prefix + "failpoint_fires", static_cast<double>(fires),
                     "fires");
    report.AddMetric(prefix + "breaker_transitions",
                     static_cast<double>(chain.breaker_transitions().size()),
                     "transitions");

    if (std::string(schedule.name) == "fault-free") {
      fault_free_p99 = stats->p99_us;
      DISC_CHECK_EQ(stats->degraded, 0) << "fault-free run degraded";
      DISC_CHECK(chain.breaker_transitions().empty())
          << "breaker moved without faults";
    } else {
      // Bounded degradation: faults inflate tail latency, but shedding +
      // the breaker keep it within an order of magnitude.
      DISC_CHECK_LT(stats->p99_us, 25.0 * fault_free_p99) << schedule.name;
      report.AddMetric(prefix + "p99_inflation",
                       stats->p99_us / fault_free_p99, "x");
    }
    if (std::string(schedule.name) == "compile-outage") {
      // The breaker must have opened during the outage and re-closed after
      // the compiler healed.
      DISC_CHECK(!chain.breaker_transitions().empty()) << "breaker never moved";
      DISC_CHECK(chain.breaker_state() == BreakerState::kClosed)
          << "breaker did not re-close";
      DISC_CHECK(chain.primary_prepared()) << "primary never recovered";
    }

    table.AddRow(
        {schedule.name, bench::FmtUs(stats->p50_us),
         bench::FmtUs(stats->p99_us),
         StrFormat("%lld/%lld", static_cast<long long>(stats->completed),
                   static_cast<long long>(stats->submitted)),
         std::to_string(stats->degraded), std::to_string(stats->retries),
         std::to_string(stats->shed), std::to_string(stats->deadline_missed),
         std::to_string(stats->failed),
         std::to_string(chain.breaker_transitions().size())});
  }
  table.Print();
  std::printf(
      "\nReading: faults change the route, not the outcome — the fallback\n"
      "leg and retry/backoff absorb compile, allocation and kernel faults;\n"
      "the circuit breaker stops paying doomed compile stalls and re-closes\n"
      "once the fault clears. Every submitted request is accounted for\n"
      "(completed + shed + deadline-missed + failed), on every schedule.\n");
  return 0;
}
