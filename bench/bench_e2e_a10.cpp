// Experiment T1: headline end-to-end comparison on the A10 device model.
#include "bench/e2e_common.h"

int main() { return disc::bench::RunE2E(disc::DeviceSpec::A10()); }
